package edge

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"quhe/internal/he/ckks"
	"quhe/internal/he/profile"
	"quhe/internal/obs"
	"quhe/internal/qkd"
	"quhe/internal/serve"
	"quhe/internal/transcipher"
)

// RekeyWithdrawBytes is the QKD key material drawn from the key centre
// per transciphering key (initial setup and every rekey).
const RekeyWithdrawBytes = 32

// Protocol selects the wire protocol a Client dials with.
type Protocol int

const (
	// ProtoAuto negotiates the framed v3 protocol and falls back to gob
	// (v2) when the server predates it. The default.
	ProtoAuto Protocol = iota
	// ProtoV3 requires protocol v3: dialing an older server fails with
	// ErrProtocolMismatch instead of falling back.
	ProtoV3
	// ProtoGob forces the legacy gob (v2) protocol even against a v3
	// server.
	ProtoGob
)

// DialConfig carries optional Dial knobs.
type DialConfig struct {
	// Protocol selects the wire protocol; zero value is ProtoAuto.
	Protocol Protocol
	// Checksum requests per-frame CRC32C trailers at the v3 handshake
	// (integrity on untrusted links). Effective only when the server
	// accepts (ServerConfig.FrameChecksums); against older servers the
	// request is silently ignored and the connection runs un-trailed —
	// Client.Checksums reports the negotiated state.
	Checksum bool
	// Profile requests a security profile for the session. Empty lets
	// the server (its control plane's per-route λ plan) steer; a concrete
	// ID is granted or downgraded per the active plan — Client.Profile
	// reports what the session actually runs. Against peers that predate
	// profile negotiation (gob servers, pre-profile v3 servers) only the
	// empty or default request succeeds; anything else fails with an
	// error wrapping serve.ErrProfileDenied rather than silently running
	// at the wrong security level.
	Profile string
	// Profiles overrides the profile registry (nil = profile.Default()).
	// It must agree with the server's registry for non-default profiles.
	Profiles *profile.Registry
	// Dialer overrides how the transport connection is established (fault
	// injection, proxies, custom networks). nil dials plain TCP bounded by
	// DialTimeout.
	Dialer func(network, addr string) (net.Conn, error)
	// DialTimeout bounds the default TCP dial (0 = 5s). Ignored when
	// Dialer is set.
	DialTimeout time.Duration
	// RequestTimeout bounds each Compute/ComputeBatch/Rekey round trip.
	// Expiry abandons the request (a late reply is dropped) and fails the
	// call with an error wrapping serve.ErrDeadline. 0 = no deadline.
	RequestTimeout time.Duration
	// Reconnect enables automatic recovery from connection loss: jittered
	// capped-exponential-backoff redials, session resume against servers
	// that negotiate it (no re-keygen, no new QKD withdrawal), and replay
	// of in-flight Compute requests on the resumed transport. In-flight
	// Setup/Rekey/Batch requests fail typed instead of replaying — a
	// replayed rekey could double-bump the key epoch. Pair with
	// RequestTimeout so a request lost in the reconnect window cannot
	// block its caller forever.
	Reconnect bool
	// ReconnectAttempts caps redials per outage (0 = 5).
	ReconnectAttempts int
	// ReconnectBackoff is the first redial backoff (0 = 50ms); it doubles
	// per attempt with ±50% jitter, capped at ReconnectBackoffMax (0 = 2s).
	ReconnectBackoff    time.Duration
	ReconnectBackoffMax time.Duration
	// RetryBudget caps the transparent request retries of the unified
	// retry policy — mid-batch key rotations and server-demanded rekeys —
	// before the typed error surfaces to the caller (0 = 3).
	RetryBudget int
	// Tracer, when set, collects client-side spans (dial, handshake,
	// keygen, setup, mask/submit/wait per sampled compute, reconnect,
	// resume, replay, rekey, retry backoff) into the shared internal/obs
	// trace model. Against a v3 server that acks helloFlagTrace, sampled
	// computes also carry their 16-byte trace context on the wire, so
	// the server's stage spans land in the same trace. nil = untraced.
	Tracer *obs.Tracer
	// TraceSample is the fraction of Compute requests sampled into full
	// traces when Tracer is set (≤ 0 or > 1 = 1.0, i.e. every block).
	// Lifecycle spans are always recorded — they are rare and each one
	// explains a latency cliff.
	TraceSample float64
	// Route labels the session's QKD route in the key-flow ledger
	// attached to the key centre (attribution only; empty is fine).
	Route string
}

// Client-side fault-tolerance defaults (see DialConfig).
const (
	defaultDialTimeout         = 5 * time.Second
	defaultReconnectAttempts   = 5
	defaultReconnectBackoff    = 50 * time.Millisecond
	defaultReconnectBackoffMax = 2 * time.Second
	defaultRetryBudget         = 3
	// The unified retry policy's jitter window for in-place request
	// retries (much tighter than reconnect backoff: the connection is
	// healthy, we only yield to let a rotation settle).
	retryBackoffBase = 5 * time.Millisecond
	retryBackoffMax  = 250 * time.Millisecond
)

// negotiateTimeout bounds the wait for the server's v3 hello ack. Legacy
// servers close the connection as soon as the hello fails to gob-decode,
// so the deadline only bites against a hung peer.
const negotiateTimeout = 5 * time.Second

// Client is a QuHE edge client node: it owns the HE secret key, masks data
// under the QKD-derived symmetric key, and decrypts the server's encrypted
// results. One Client drives one TCP connection, by default over the
// framed v3 protocol (falling back to pipelined gob v2 against older
// servers): ComputeAsync/ComputeBatch keep multiple requests in flight and
// a reader goroutine matches out-of-order replies by request ID. Safe for
// concurrent use.
type Client struct {
	sessionID string
	addr      string
	dcfg      DialConfig

	// proto is "v3" or "gob" once negotiated.
	proto string
	// prof is the security profile the session runs on; wireProfile is
	// the profile ID carried in Setup ("" on legacy paths, where the
	// server pins the session to its default).
	prof        *profile.Profile
	wireProfile string

	// connMu guards the live transport (conn/fw/br/crc), which a
	// reconnect swaps wholesale; gen bumps on every swap so a sender that
	// failed mid-swap can tell a dead connection from a replaced one.
	connMu sync.Mutex
	gen    uint64
	conn   net.Conn
	// v3 transport: framed writes through fw, framed reads off br.
	fw *frameWriter
	br *bufio.Reader
	// crc reports that per-frame CRC32C trailers were negotiated.
	crc bool

	// gob transport: writeMu serializes enc (gob never reconnects).
	writeMu sync.Mutex
	enc     *gob.Encoder

	// resume reports the server negotiated session resume at the hello.
	resume bool
	// mvDim is the server's packed model matrix dimension, learned from
	// the SetupReply after the hello negotiated matvec (0 = encrypted
	// matvec unavailable on this connection). seed is kept so the
	// rotation-key generation in EnableMatVec derives from the same
	// deterministic stream as the dial-time keygen.
	mvDim int
	seed  int64
	// rotMu guards rotInstalled: EnableMatVec uploads the Galois keys at
	// most once per client (they live on the server-side session and
	// survive reconnect-and-resume).
	rotMu        sync.Mutex
	rotInstalled bool
	// traceWire reports the current transport negotiated trace-context
	// propagation (helloFlagTrace); atomic because a reconnect may swap
	// it under senders.
	traceWire atomic.Bool
	// tracer emits client-side spans (nil = untraced).
	tracer *clientTracer
	// resumedSinceRekey marks that the session resumed on a fresh
	// transport and the resume credential has not rotated since; the
	// next ledgered rekey is attributed to resume-rotation.
	resumedSinceRekey atomic.Bool

	closed    atomic.Bool
	closeOnce sync.Once
	closeErr  error

	// rng drives backoff jitter; seeded, so a chaos run's retry timing is
	// reproducible per client.
	rngMu sync.Mutex
	rng   *rand.Rand

	// Fault-tolerance event counters (see Stats).
	reconnects atomic.Int64
	resumes    atomic.Int64
	retries    atomic.Int64
	replays    atomic.Int64
	keygens    atomic.Int64

	ctx     *ckks.Context
	cipher  *transcipher.Cipher
	encoder *ckks.Encoder

	// evMu guards the evaluator (shared scratch buffers and RNG): key
	// encryption on dial/rekey and result decryption on Wait.
	evMu sync.Mutex
	ev   *ckks.Evaluator
	sk   *ckks.SecretKey
	pk   *ckks.PublicKey

	// kc, when attached via DialQKD, sources rekey withdrawals.
	kc      *qkd.KeyCenter
	rekeyMu sync.Mutex

	// keyMu also guards resumeAuth: the resume credential is derived from
	// the QKD material and rotates atomically with the key.
	keyMu      sync.Mutex
	key        []float64
	nonce      []byte
	epoch      uint64
	resumeAuth []byte

	nextID  atomic.Uint64
	pendMu  sync.Mutex
	pending map[uint64]*call
	// batchAsm assembles streamed v3 batch items by request ID until the
	// batch trailer arrives.
	batchAsm map[uint64]*BatchReply
	readErr  error

	// statMu guards the modeled-delay echoes and the rekey advice.
	// rekeyAdvisedEpoch is the key epoch the server's advice applied to
	// (0 = none): tagging the advice with its epoch keeps a stale reply —
	// one that raced a completed rekey — from triggering a second,
	// wasteful rotation.
	statMu            sync.Mutex
	rekeyAdvisedEpoch uint64

	// LastTxDelay and LastCmpDelay echo the server's modeled costs of the
	// most recently completed Compute call. They are only meaningful when
	// read with no request in flight.
	LastTxDelay  float64
	LastCmpDelay float64
}

// call is one in-flight request: its reply channel, the envelope (kept so
// a reconnect can replay Compute requests), and an optional per-call
// terminal error set before the channel is closed.
type call struct {
	ch  chan *replyEnvelope
	env *envelope
	err error
}

// ClientStats counts the client's fault-tolerance events since Dial.
type ClientStats struct {
	// Reconnects and Resumes count successful transport re-establishments
	// and the session resumes that rode them (equal today; split so a
	// future non-resume reconnect path stays observable).
	Reconnects int64
	Resumes    int64
	// Retries counts transparent request retries under the unified retry
	// policy; Replays counts in-flight Computes re-sent after a resume.
	Retries int64
	Replays int64
	// Keygens counts HE key generations (1 at Dial; a resume performs
	// none — that is the point of the resume handshake).
	Keygens int64
}

// Stats snapshots the fault-tolerance counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Reconnects: c.reconnects.Load(),
		Resumes:    c.resumes.Load(),
		Retries:    c.retries.Load(),
		Replays:    c.replays.Load(),
		Keygens:    c.keygens.Load(),
	}
}

// Dial connects to an edge server, generates the client's HE keys, derives
// the transciphering key from qkdKey (e.g. material withdrawn from the
// qkd.KeyCenter), and registers the session.
func Dial(addr, sessionID string, qkdKey []byte, seed int64) (*Client, error) {
	return dial(addr, sessionID, qkdKey, nil, seed, DialConfig{})
}

// DialWith is Dial with explicit configuration (e.g. a forced wire
// protocol).
func DialWith(addr, sessionID string, qkdKey []byte, seed int64, cfg DialConfig) (*Client, error) {
	return dial(addr, sessionID, qkdKey, nil, seed, cfg)
}

// DialQKD is Dial with the key plane attached: the initial transciphering
// key is withdrawn from the key centre's pool for sessionID, and the key
// centre stays attached so Rekey (and the automatic rekey on
// serve.ErrRekeyRequired) can draw fresh material.
func DialQKD(addr, sessionID string, kc *qkd.KeyCenter, seed int64) (*Client, error) {
	return DialQKDWith(addr, sessionID, kc, seed, DialConfig{})
}

// DialQKDWith is DialQKD with explicit configuration.
func DialQKDWith(addr, sessionID string, kc *qkd.KeyCenter, seed int64, cfg DialConfig) (*Client, error) {
	if kc == nil {
		return nil, errors.New("edge: nil key centre")
	}
	material, err := kc.WithdrawAttributed(sessionID, RekeyWithdrawBytes, qkd.Attribution{
		Route: cfg.Route, Profile: cfg.Profile, Cause: qkd.CauseSetup,
	})
	if err != nil {
		return nil, fmt.Errorf("edge: qkd withdraw: %w", err)
	}
	return dial(addr, sessionID, material, kc, seed, cfg)
}

func dial(addr, sessionID string, qkdKey []byte, kc *qkd.KeyCenter, seed int64, dcfg DialConfig) (*Client, error) {
	return dialAttempt(addr, sessionID, qkdKey, kc, seed, dcfg, 0)
}

func dialAttempt(addr, sessionID string, qkdKey []byte, kc *qkd.KeyCenter, seed int64, dcfg DialConfig, attempt int) (*Client, error) {
	if sessionID == "" {
		return nil, errors.New("edge: empty session id")
	}
	if seed == 0 {
		seed = 1
	}
	reg := dcfg.Profiles
	if reg == nil {
		reg = profile.Default()
	}
	if dcfg.Profile != "" {
		if _, ok := reg.Get(dcfg.Profile); !ok {
			return nil, fmt.Errorf("edge: %w: unknown profile %q", serve.ErrProfileDenied, dcfg.Profile)
		}
	}

	dialStart := time.Now()
	neg, err := negotiate(addr, dcfg)
	if err != nil {
		return nil, err
	}
	dialDur := time.Since(dialStart)
	conn, br, proto, crc, profiles := neg.conn, neg.br, neg.proto, neg.crc, neg.profiles
	if proto == "v3" && !neg.rnsWire {
		// A v3 server that does not ack the residue-tower wire format
		// predates the limb layout: its frames would misparse ours and vice
		// versa, so fail typed instead of exchanging garbage.
		conn.Close()
		return nil, fmt.Errorf("edge: %w: server lacks residue-tower wire support", serve.ErrWireFormat)
	}
	// Profile resolution happens before key generation so a plan-steered
	// or downgraded profile never costs a wasted keygen. Peers that do
	// not negotiate pin the session to the default profile; an explicit
	// non-default request against them is a hard typed failure.
	prof := reg.Default()
	wireProfile := ""
	handshakeStart := time.Now()
	if proto == "v3" && profiles {
		granted, err := queryProfile(conn, br, crc, sessionID, dcfg.Profile)
		if err != nil {
			conn.Close()
			return nil, err
		}
		p, ok := reg.Get(granted)
		if !ok {
			conn.Close()
			return nil, fmt.Errorf("edge: %w: server granted unknown profile %q", serve.ErrProfileDenied, granted)
		}
		prof, wireProfile = p, granted
	} else if dcfg.Profile != "" && dcfg.Profile != reg.DefaultID() {
		conn.Close()
		return nil, fmt.Errorf("edge: %w: peer does not negotiate profiles (requested %q)",
			serve.ErrProfileDenied, dcfg.Profile)
	}

	handshakeDur := time.Since(handshakeStart)

	keygenStart := time.Now()
	ctx, err := prof.Context()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("edge: context: %w", err)
	}
	cipher, err := transcipher.New(ctx, KeyLen)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("edge: cipher: %w", err)
	}
	kg := ckks.NewKeyGenerator(ctx, seed)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	ev := ckks.NewEvaluator(ctx, seed+1)

	key, err := cipher.DeriveKey(qkdKey)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("edge: derive key: %w", err)
	}
	encKey, err := cipher.EncryptKey(ev, pk, key)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("edge: encrypt key: %w", err)
	}

	keygenDur := time.Since(keygenStart)

	resume := proto == "v3" && neg.resume
	var resumeAuth []byte
	if resume {
		resumeAuth = deriveResumeAuth(qkdKey)
	}
	c := &Client{
		sessionID:   sessionID,
		addr:        addr,
		dcfg:        dcfg,
		conn:        conn,
		proto:       proto,
		crc:         crc,
		prof:        prof,
		wireProfile: wireProfile,
		resume:      resume,
		seed:        seed,
		rng:         rand.New(rand.NewSource(seed ^ 0x5DEECE66D)),
		ctx:         ctx,
		cipher:      cipher,
		encoder:     ckks.NewEncoder(ctx),
		ev:          ev,
		sk:          sk,
		pk:          pk,
		kc:          kc,
		key:         key,
		nonce:       nonceFor(sessionID, 1),
		epoch:       1,
		pending:     make(map[uint64]*call),
	}
	c.keygens.Store(1)
	c.traceWire.Store(proto == "v3" && neg.trace)
	c.tracer = newClientTracer(dcfg.Tracer, sessionID, dcfg.TraceSample, func() uint64 {
		c.rngMu.Lock()
		v := c.rng.Uint64()
		c.rngMu.Unlock()
		return v
	})
	if proto == "v3" {
		c.fw = newFrameWriter(conn, func() { conn.Close() }, nil)
		c.fw.crc = crc
		c.br = br
		c.batchAsm = make(map[uint64]*BatchReply)
	} else {
		c.enc = gob.NewEncoder(conn)
	}
	go c.readLoop()

	setupStart := time.Now()
	reply, err := c.roundTrip(&envelope{Setup: &SetupRequest{
		SessionID:  sessionID,
		LogN:       ctx.Params.LogN,
		Depth:      ctx.Params.Depth,
		PK:         pk,
		RLK:        rlk,
		EncKey:     encKey,
		Nonce:      c.nonce,
		Profile:    wireProfile,
		ResumeAuth: resumeAuth,
	}})
	if err != nil {
		c.teardown()
		return nil, fmt.Errorf("edge: setup: %w", err)
	}
	if reply.Setup == nil {
		c.teardown()
		return nil, errors.New("edge: setup rejected: missing reply")
	}
	if !reply.Setup.OK {
		c.teardown()
		setupErr := replyError(reply.Setup.Code, reply.Setup.Err)
		// A profile grant can go stale between the query and Setup when a
		// replan moves the route's λ mid-dial: renegotiate from scratch
		// (fresh connection, fresh grant, fresh keys) a bounded number of
		// times before surfacing the typed denial.
		if errors.Is(setupErr, serve.ErrProfileDenied) && proto == "v3" && profiles && attempt < 2 {
			return dialAttempt(addr, sessionID, qkdKey, kc, seed, dcfg, attempt+1)
		}
		return nil, fmt.Errorf("edge: setup rejected: %w", setupErr)
	}
	if reply.Setup.Profile != "" && reply.Setup.Profile != wireProfile {
		c.teardown()
		return nil, fmt.Errorf("edge: %w: registered on %q, granted %q",
			serve.ErrProfileDenied, reply.Setup.Profile, wireProfile)
	}
	// The server only advertises a matrix dimension when both sides set
	// helloFlagMatVec; a zero here means encrypted matvec is unavailable
	// on this connection (old peer, not negotiated, or no matrix).
	if neg.matvec {
		c.mvDim = reply.Setup.MatVecDim
	}
	// Arm the reconnect machinery only once the credential is registered
	// server-side — a connection lost before this point has nothing to
	// resume into.
	if resume {
		c.keyMu.Lock()
		c.resumeAuth = resumeAuth
		c.keyMu.Unlock()
	}
	// The dial trace: one client-lane record covering the whole session
	// establishment, split into its expensive stages.
	if cs := c.tracer.begin(obs.TraceContext{}, 0, 0, dialStart); cs != nil {
		cs.spanDur(cstageDial, dialStart, dialDur)
		cs.spanDur(cstageHandshake, handshakeStart, handshakeDur)
		cs.spanDur(cstageKeygen, keygenStart, keygenDur)
		cs.span(cstageSetup, setupStart)
		cs.finish()
	}
	return c, nil
}

// queryProfile runs the synchronous pre-Setup profile negotiation on a
// freshly handshaken v3 connection (the read loop is not running yet, so
// the reply is consumed inline like the hello ack).
func queryProfile(conn net.Conn, br *bufio.Reader, crc bool, sessionID, requested string) (string, error) {
	f := beginFrame(nil, frameProfile, 0)
	f = appendProfileRequest(f, &ProfileRequest{SessionID: sessionID, Requested: requested})
	f, err := finishFrame(f, 0)
	if err != nil {
		return "", err
	}
	if crc {
		f = binary.LittleEndian.AppendUint32(f, crc32.Checksum(f, crcTable))
	}
	if _, err := conn.Write(f); err != nil {
		return "", fmt.Errorf("edge: profile query: %w", err)
	}
	conn.SetReadDeadline(time.Now().Add(negotiateTimeout))
	defer conn.SetReadDeadline(time.Time{})
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	ftype, _, payload, err := readFrameCRC(br, buf, crc)
	if err != nil {
		return "", fmt.Errorf("edge: profile query: %w", err)
	}
	if ftype != frameProfileReply {
		return "", fmt.Errorf("%w: unexpected frame type %d in profile negotiation", ErrBadFrame, ftype)
	}
	rep, err := decodeProfileReply(payload)
	if err != nil {
		return "", err
	}
	if rep.Code != serve.CodeOK {
		return "", fmt.Errorf("edge: profile rejected: %w", replyError(rep.Code, rep.Err))
	}
	if rep.Granted == "" {
		return "", errors.New("edge: profile negotiation granted nothing")
	}
	return rep.Granted, nil
}

// negotiated is the transport negotiate establishes: the connection, the
// protocol generation, and the v3 feature flags the server acked.
type negotiated struct {
	conn     net.Conn
	br       *bufio.Reader
	proto    string
	crc      bool
	profiles bool
	rnsWire  bool
	resume   bool
	trace    bool
	matvec   bool
}

// dialFunc resolves the configured dialer (DialConfig.Dialer, or plain
// TCP bounded by DialTimeout).
func dialFunc(dcfg DialConfig) func(network, addr string) (net.Conn, error) {
	if dcfg.Dialer != nil {
		return dcfg.Dialer
	}
	to := dcfg.DialTimeout
	if to <= 0 {
		to = defaultDialTimeout
	}
	return func(network, addr string) (net.Conn, error) {
		return net.DialTimeout(network, addr, to)
	}
}

// negotiate establishes the transport for the requested protocol. For v3
// it performs the hello handshake: a server that acks speaks v3; one that
// kills the connection (a gob-era server choking on the frame magic)
// triggers a redial on the gob path under ProtoAuto, or
// ErrProtocolMismatch under ProtoV3. DialConfig.Checksum requests
// per-frame CRC32C trailers in the hello flags; negotiated.crc reports
// whether the server granted them (pre-checksum servers ack with an empty
// payload, read as "no"). profiles, rnsWire and resume report whether the
// server advertised security-profile negotiation, the residue-tower
// ciphertext wire format, and session resume in its ack flags.
func negotiate(addr string, dcfg DialConfig) (negotiated, error) {
	dialer := dialFunc(dcfg)
	dialGob := func() (negotiated, error) {
		conn, err := dialer("tcp", addr)
		if err != nil {
			return negotiated{}, fmt.Errorf("edge: dial: %w", err)
		}
		return negotiated{conn: conn, proto: "gob"}, nil
	}
	if dcfg.Protocol == ProtoGob {
		return dialGob()
	}
	conn, err := dialer("tcp", addr)
	if err != nil {
		return negotiated{}, fmt.Errorf("edge: dial: %w", err)
	}
	// The hello always carries a flags byte: profile support, the
	// residue-tower wire format, session resume, trace propagation and
	// matvec are advertised unconditionally (servers that predate them
	// ignore unknown bits and ack without the flags), CRC only on request.
	flags := byte(helloFlagProfiles | helloFlagRNSWire | helloFlagResume | helloFlagTrace | helloFlagMatVec)
	if dcfg.Checksum {
		flags |= helloFlagCRC
	}
	hello := beginFrame(nil, frameHello, 0)
	hello = append(hello, flags)
	hello, _ = finishFrame(hello, 0)
	var ftype byte
	var n negotiated
	_, err = conn.Write(hello)
	br := bufio.NewReaderSize(conn, wireBufSize)
	if err == nil {
		conn.SetReadDeadline(time.Now().Add(negotiateTimeout))
		buf := getFrameBuf()
		var ackPayload []byte
		ftype, _, ackPayload, err = readFrame(br, buf)
		if err == nil && len(ackPayload) >= 1 {
			n.crc = dcfg.Checksum && ackPayload[0]&helloFlagCRC != 0
			n.profiles = ackPayload[0]&helloFlagProfiles != 0
			n.rnsWire = ackPayload[0]&helloFlagRNSWire != 0
			n.resume = ackPayload[0]&helloFlagResume != 0
			n.trace = ackPayload[0]&helloFlagTrace != 0
			n.matvec = ackPayload[0]&helloFlagMatVec != 0
		}
		putFrameBuf(buf)
		conn.SetReadDeadline(time.Time{})
	}
	if err == nil && ftype == frameHello {
		n.conn, n.br, n.proto = conn, br, "v3"
		return n, nil
	}
	conn.Close()
	if dcfg.Protocol == ProtoV3 {
		return negotiated{}, fmt.Errorf("%w (hello failed: %v)", ErrProtocolMismatch, err)
	}
	return dialGob()
}

// nonceFor derives the per-epoch masking nonce: epoch and a session-ID
// hash packed into the cipher's 12-byte nonce space, so rekeys never
// reuse a (key, nonce) pair even for long session IDs.
func nonceFor(sessionID string, epoch uint64) []byte {
	h := fnv.New32a()
	h.Write([]byte(sessionID))
	nonce := make([]byte, 12)
	binary.LittleEndian.PutUint64(nonce[:8], epoch)
	binary.LittleEndian.PutUint32(nonce[8:], h.Sum32())
	return nonce
}

// replyError reconstructs a typed error from a wire code and detail, so
// callers can branch with errors.Is against the serve sentinels. Key
// exhaustion carries its retry-after hint across the wire in the detail
// string; rebuild the structured form so serve.RetryAfter works
// client-side.
func replyError(code serve.Code, detail string) error {
	if code == serve.CodeKeyExhausted {
		return fmt.Errorf("edge: server: %w", serve.ParseKeyExhausted(detail))
	}
	sentinel := code.Err()
	if sentinel == nil {
		if detail == "" {
			return nil
		}
		return fmt.Errorf("edge: server: %s", detail)
	}
	if detail == "" {
		return fmt.Errorf("edge: server: %w", sentinel)
	}
	return fmt.Errorf("edge: server: %w: %s", sentinel, detail)
}

// teardown marks the client closed and closes the transport exactly once;
// the read loop's terminal path and Close both funnel through it, so there
// is no double-close race between them.
func (c *Client) teardown() {
	c.closed.Store(true)
	c.closeOnce.Do(func() {
		c.connMu.Lock()
		conn := c.conn
		c.connMu.Unlock()
		c.closeErr = conn.Close()
	})
}

// failPending fails every in-flight request with err (the first failure
// wins) and drops any half-assembled batches.
func (c *Client) failPending(err error) {
	c.pendMu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	for id, cl := range c.pending {
		delete(c.pending, id)
		close(cl.ch)
	}
	for id := range c.batchAsm {
		delete(c.batchAsm, id)
	}
	c.pendMu.Unlock()
}

// deliver hands a reply to the request waiting on its ID.
func (c *Client) deliver(reply *replyEnvelope) {
	c.pendMu.Lock()
	cl := c.pending[reply.ID]
	delete(c.pending, reply.ID)
	c.pendMu.Unlock()
	if cl != nil {
		cl.ch <- reply
	}
}

// readLoop dispatches replies to their waiting requests by ID. On
// connection error it either recovers the session (reconnect + resume,
// when enabled) or fails every pending request with an error wrapping
// serve.ErrConnClosed, so callers can branch on the failure class.
func (c *Client) readLoop() {
	if c.proto != "v3" {
		dec := gob.NewDecoder(c.conn)
		for {
			reply := new(replyEnvelope)
			if err := dec.Decode(reply); err != nil {
				c.failPending(fmt.Errorf("edge: recv: %w: %v", serve.ErrConnClosed, err))
				c.teardown()
				return
			}
			c.deliver(reply)
		}
	}
	for {
		err := c.readConnV3()
		if rerr := c.tryRecover(err); rerr != nil {
			c.failPending(rerr)
			c.teardown()
			return
		}
	}
}

// readConnV3 drains one transport generation, returning the first
// connection error.
func (c *Client) readConnV3() error {
	c.connMu.Lock()
	br, crc := c.br, c.crc
	c.connMu.Unlock()
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	for {
		ftype, id, payload, err := readFrameCRC(br, buf, crc)
		if err == nil {
			err = c.handleFrameV3(ftype, id, payload)
		}
		if err != nil {
			return err
		}
	}
}

// canRecover reports whether the automatic reconnect machinery is armed:
// enabled, a v3 transport whose server negotiated resume, a registered
// credential, and the client not closed.
func (c *Client) canRecover() bool {
	if c.closed.Load() || !c.dcfg.Reconnect || c.proto != "v3" || !c.resume {
		return false
	}
	c.keyMu.Lock()
	armed := len(c.resumeAuth) > 0
	c.keyMu.Unlock()
	return armed
}

// tryRecover attempts reconnect + session resume after a transport
// failure. It returns nil when the session was re-attached (the read loop
// continues on the new transport) and the terminal error otherwise.
func (c *Client) tryRecover(cause error) error {
	terminal := fmt.Errorf("edge: recv: %w: %v", serve.ErrConnClosed, cause)
	if !c.canRecover() {
		return terminal
	}
	// Setup/Rekey/Batch requests caught mid-flight cannot be safely
	// replayed (a replayed rekey would double-bump the epoch, a batch
	// would double-count its admission); fail them typed now. Compute
	// requests stay registered for replay on the resumed transport.
	c.shedNonReplayable(cause)
	// The recovery trace adopts the trace identity of the oldest
	// in-flight compute, so the outage's backoff/reconnect/resume/replay
	// spans land inside the trace of the block they delayed.
	rec := c.tracer.beginLinked(c.oldestPendingTrace(), time.Now())
	defer rec.finish()
	attempts := c.dcfg.ReconnectAttempts
	if attempts <= 0 {
		attempts = defaultReconnectAttempts
	}
	base, max := c.dcfg.ReconnectBackoff, c.dcfg.ReconnectBackoffMax
	if base <= 0 {
		base = defaultReconnectBackoff
	}
	if max <= 0 {
		max = defaultReconnectBackoffMax
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		backoffStart := time.Now()
		time.Sleep(c.jitter(attempt, base, max))
		rec.span(cstageBackoff, backoffStart)
		if c.closed.Load() {
			return terminal
		}
		err := c.reconnectOnce(rec)
		if err == nil {
			replayStart := time.Now()
			c.replayPending()
			rec.span(cstageReplay, replayStart)
			return nil
		}
		lastErr = err
		// A typed denial will not improve with retries: the session is
		// gone (resume window expired), the state drifted, or the server
		// is draining — surface it.
		if errors.Is(err, serve.ErrResumeRejected) || errors.Is(err, serve.ErrUnknownSession) ||
			errors.Is(err, serve.ErrDraining) {
			return err
		}
	}
	return fmt.Errorf("edge: reconnect failed after %d attempts: %w (last: %v)",
		attempts, serve.ErrConnClosed, lastErr)
}

// oldestPendingTrace returns the wire trace context of the lowest-ID
// in-flight Compute carrying one (zero context when none does) — the
// causal anchor for the recovery trace.
func (c *Client) oldestPendingTrace() obs.TraceContext {
	var tc obs.TraceContext
	var best uint64
	c.pendMu.Lock()
	for id, cl := range c.pending {
		if cl.env == nil || cl.env.Compute == nil || !cl.env.Compute.Trace.Valid() {
			continue
		}
		if tc.TraceID == 0 || id < best {
			tc, best = cl.env.Compute.Trace, id
		}
	}
	c.pendMu.Unlock()
	return tc
}

// shedNonReplayable fails every in-flight request except Computes with a
// typed per-call error.
func (c *Client) shedNonReplayable(cause error) {
	c.pendMu.Lock()
	for id, cl := range c.pending {
		if cl.env != nil && cl.env.Compute != nil {
			continue
		}
		delete(c.pending, id)
		delete(c.batchAsm, id)
		cl.err = fmt.Errorf("edge: %w: connection lost mid-request (not replayed): %v",
			serve.ErrConnClosed, cause)
		close(cl.ch)
	}
	c.pendMu.Unlock()
}

// jitter computes a capped exponential backoff with ±50% jitter from the
// client's seeded RNG.
func (c *Client) jitter(attempt int, base, max time.Duration) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	c.rngMu.Lock()
	j := c.rng.Int63n(half + 1)
	c.rngMu.Unlock()
	return time.Duration(half + j)
}

// reconnectOnce redials, renegotiates and runs the resume handshake; on
// success the new transport is installed and the counters bumped. rec,
// when non-nil, receives the reconnect and resume spans.
func (c *Client) reconnectOnce(rec *clientSpans) error {
	dcfg := c.dcfg
	dcfg.Protocol = ProtoV3 // the session state is v3; never fall back to gob
	reconnectStart := time.Now()
	neg, err := negotiate(c.addr, dcfg)
	if err != nil {
		return err
	}
	rec.span(cstageReconnect, reconnectStart)
	if !neg.resume || !neg.rnsWire {
		neg.conn.Close()
		return fmt.Errorf("edge: %w: peer no longer negotiates resume", serve.ErrResumeRejected)
	}
	c.keyMu.Lock()
	auth, epoch := c.resumeAuth, c.epoch
	c.keyMu.Unlock()
	resumeStart := time.Now()
	if err := resumeHandshake(neg.conn, neg.br, neg.crc, c.sessionID, epoch, c.wireProfile, auth); err != nil {
		neg.conn.Close()
		return err
	}
	rec.span(cstageResume, resumeStart)
	conn := neg.conn
	fw := newFrameWriter(conn, func() { conn.Close() }, nil)
	fw.crc = neg.crc
	c.connMu.Lock()
	c.conn, c.br, c.fw, c.crc = conn, neg.br, fw, neg.crc
	c.gen++
	c.connMu.Unlock()
	c.traceWire.Store(neg.trace)
	c.resumedSinceRekey.Store(true)
	c.reconnects.Add(1)
	c.resumes.Add(1)
	return nil
}

// resumeHandshake proves key possession on a fresh connection and
// re-attaches the session: Resume → Challenge → Proof → Reply, run
// synchronously like the hello ack (no read loop is consuming this
// connection yet).
func resumeHandshake(conn net.Conn, br *bufio.Reader, crc bool, sessionID string, epoch uint64, profileID string, auth []byte) error {
	send := func(ftype byte, enc func([]byte) []byte) error {
		f := beginFrame(nil, ftype, 0)
		f = enc(f)
		f, err := finishFrame(f, 0)
		if err != nil {
			return err
		}
		if crc {
			f = binary.LittleEndian.AppendUint32(f, crc32.Checksum(f, crcTable))
		}
		_, err = conn.Write(f)
		return err
	}
	recv := func() (byte, []byte, func(), error) {
		conn.SetReadDeadline(time.Now().Add(negotiateTimeout))
		buf := getFrameBuf()
		ftype, _, payload, err := readFrameCRC(br, buf, crc)
		conn.SetReadDeadline(time.Time{})
		release := func() { putFrameBuf(buf) }
		if err != nil {
			release()
			return 0, nil, nil, err
		}
		return ftype, payload, release, nil
	}
	if err := send(frameResume, func(b []byte) []byte {
		return appendResumeRequest(b, &ResumeRequest{SessionID: sessionID, Epoch: epoch, Profile: profileID})
	}); err != nil {
		return fmt.Errorf("edge: resume: %w", err)
	}
	ftype, payload, release, err := recv()
	if err != nil {
		return fmt.Errorf("edge: resume: %w", err)
	}
	if ftype == frameResumeReply {
		// Denied before the challenge (unknown session, drift, draining).
		rep, derr := decodeResumeReply(payload)
		release()
		if derr != nil {
			return derr
		}
		return fmt.Errorf("edge: resume rejected: %w", replyError(rep.Code, rep.Err))
	}
	if ftype != frameResumeChallenge {
		release()
		return fmt.Errorf("%w: unexpected frame type %d in resume handshake", ErrBadFrame, ftype)
	}
	ch, err := decodeResumeChallenge(payload)
	release()
	if err != nil {
		return err
	}
	if err := send(frameResumeProof, func(b []byte) []byte {
		return appendResumeProof(b, &ResumeProof{MAC: resumeMAC(auth, ch.Challenge, sessionID, epoch)})
	}); err != nil {
		return fmt.Errorf("edge: resume: %w", err)
	}
	ftype, payload, release, err = recv()
	if err != nil {
		return fmt.Errorf("edge: resume: %w", err)
	}
	defer release()
	if ftype != frameResumeReply {
		return fmt.Errorf("%w: unexpected frame type %d in resume handshake", ErrBadFrame, ftype)
	}
	rep, err := decodeResumeReply(payload)
	if err != nil {
		return err
	}
	if !rep.OK {
		return fmt.Errorf("edge: resume rejected: %w", replyError(rep.Code, rep.Err))
	}
	return nil
}

// replayPending re-sends the Compute requests that were in flight when
// the connection died, in request-ID order, on the fresh transport.
func (c *Client) replayPending() {
	type replayItem struct {
		id  uint64
		env *envelope
	}
	c.pendMu.Lock()
	items := make([]replayItem, 0, len(c.pending))
	for id, cl := range c.pending {
		if cl.env != nil && cl.env.Compute != nil {
			items = append(items, replayItem{id, cl.env})
		}
	}
	c.pendMu.Unlock()
	sort.Slice(items, func(i, j int) bool { return items[i].id < items[j].id })
	traceWire := c.traceWire.Load()
	for _, it := range items {
		if !traceWire {
			// The resumed transport did not negotiate trace propagation
			// (e.g. failover to a pre-trace server): strip the context so
			// the replayed frame stays decodable there.
			it.env.Compute.Trace = obs.TraceContext{}
		}
		c.replays.Add(1)
		if err := c.write(it.env); err != nil {
			return // the new connection died too; the next recovery round replays
		}
	}
}

func (c *Client) handleFrameV3(ftype byte, id uint64, payload []byte) error {
	switch ftype {
	case frameSetupReply:
		rep, err := decodeSetupReply(payload)
		if err != nil {
			return err
		}
		c.deliver(&replyEnvelope{ID: id, Setup: rep})
	case frameComputeReply:
		rep, err := decodeComputeReply(payload)
		if err != nil {
			return err
		}
		c.deliver(&replyEnvelope{ID: id, Compute: rep})
	case frameRekeyReply:
		rep, err := decodeRekeyReply(payload)
		if err != nil {
			return err
		}
		c.deliver(&replyEnvelope{ID: id, Rekey: rep})
	case frameRotKeysReply:
		rep, err := decodeRotKeysReply(payload)
		if err != nil {
			return err
		}
		c.deliver(&replyEnvelope{ID: id, RotKeys: rep})
	case frameMatVecReply:
		rep, err := decodeComputeReply(payload)
		if err != nil {
			return err
		}
		c.deliver(&replyEnvelope{ID: id, MatVec: rep})
	case frameBatchItem:
		idx, item, err := decodeBatchItem(payload)
		if err != nil {
			return err
		}
		c.pendMu.Lock()
		if asm := c.batchAsm[id]; asm != nil && idx >= 0 && idx < len(asm.Items) {
			asm.Items[idx] = item
		}
		c.pendMu.Unlock()
	case frameBatchDone:
		rep, err := decodeBatchDone(payload)
		if err != nil {
			return err
		}
		c.pendMu.Lock()
		asm := c.batchAsm[id]
		delete(c.batchAsm, id)
		c.pendMu.Unlock()
		if asm != nil {
			rep.Items = asm.Items
		}
		c.deliver(&replyEnvelope{ID: id, Batch: rep})
	default:
		return fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, ftype)
	}
	return nil
}

// send registers a fresh request ID, stamps and encodes the envelope, and
// returns the call its reply will arrive on.
func (c *Client) send(env *envelope) (*call, error) {
	id := c.nextID.Add(1)
	env.ID = id
	cl := &call{ch: make(chan *replyEnvelope, 1), env: env}
	c.pendMu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.pendMu.Unlock()
		return nil, err
	}
	c.pending[id] = cl
	if c.proto == "v3" && env.Batch != nil {
		// Pre-size the assembly buffer so streamed items have a slot.
		c.batchAsm[id] = &BatchReply{Items: make([]BatchItem, len(env.Batch.Blocks))}
	}
	c.pendMu.Unlock()

	if err := c.write(env); err != nil {
		// With reconnect armed, a Compute whose write hit the dying
		// connection stays registered: the recovery pass replays it on
		// the resumed transport, or fails it typed when recovery gives up.
		if env.Compute != nil && c.canRecover() {
			return cl, nil
		}
		c.pendMu.Lock()
		delete(c.pending, id)
		delete(c.batchAsm, id)
		c.pendMu.Unlock()
		// A failed transport write means the connection is done; type it so
		// callers branch on the failure class, not the raw socket error.
		return nil, fmt.Errorf("edge: send: %w: %v", serve.ErrConnClosed, err)
	}
	return cl, nil
}

// write encodes and sends env on the current transport. A write that
// failed because the transport was swapped mid-call (a racing reconnect)
// retries on the new generation; one that failed on the live generation
// returns the error.
func (c *Client) write(env *envelope) error {
	if c.proto != "v3" {
		c.writeMu.Lock()
		err := c.enc.Encode(env)
		c.writeMu.Unlock()
		return err
	}
	for {
		c.connMu.Lock()
		fw, gen := c.fw, c.gen
		c.connMu.Unlock()
		err := sendV3(fw, env.ID, env)
		if err == nil {
			return nil
		}
		c.connMu.Lock()
		cur := c.gen
		c.connMu.Unlock()
		if cur == gen {
			return err
		}
	}
}

func sendV3(fw *frameWriter, id uint64, env *envelope) error {
	switch {
	case env.Setup != nil:
		return fw.sendFrame(frameSetup, id, func(b []byte) []byte { return appendSetupRequest(b, env.Setup) })
	case env.Compute != nil:
		return fw.sendFrame(frameCompute, id, func(b []byte) []byte { return appendComputeRequest(b, env.Compute) })
	case env.Batch != nil:
		return fw.sendFrame(frameBatch, id, func(b []byte) []byte { return appendBatchRequest(b, env.Batch) })
	case env.Rekey != nil:
		return fw.sendFrame(frameRekey, id, func(b []byte) []byte { return appendRekeyRequest(b, env.Rekey) })
	case env.RotKeys != nil:
		return fw.sendFrame(frameRotKeys, id, func(b []byte) []byte { return appendRotKeysRequest(b, env.RotKeys) })
	case env.MatVec != nil:
		// MatVec reuses the Compute codec; the frame type selects the path.
		return fw.sendFrame(frameMatVec, id, func(b []byte) []byte { return appendComputeRequest(b, env.MatVec) })
	}
	return errors.New("edge: empty envelope")
}

func (c *Client) wait(cl *call) (*replyEnvelope, error) {
	return c.waitCtx(context.Background(), cl)
}

// waitCtx blocks for the reply subject to ctx and the configured
// RequestTimeout; expiry abandons the request (a late reply is dropped)
// and fails with an error wrapping serve.ErrDeadline.
func (c *Client) waitCtx(ctx context.Context, cl *call) (*replyEnvelope, error) {
	var timeout <-chan time.Time
	if d := c.dcfg.RequestTimeout; d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case reply, ok := <-cl.ch:
		if !ok {
			return nil, c.callErr(cl)
		}
		return reply, nil
	case <-timeout:
		c.abandon(cl)
		return nil, fmt.Errorf("edge: %w: no reply within %v", serve.ErrDeadline, c.dcfg.RequestTimeout)
	case <-done:
		c.abandon(cl)
		return nil, fmt.Errorf("edge: %w: %v", serve.ErrDeadline, ctx.Err())
	}
}

// callErr resolves the terminal error of a failed call: its per-call
// error if one was set, else the connection's.
func (c *Client) callErr(cl *call) error {
	if cl.err != nil {
		return cl.err
	}
	c.pendMu.Lock()
	err := c.readErr
	c.pendMu.Unlock()
	if err == nil {
		err = errors.New("edge: connection closed")
	}
	return err
}

// abandon deregisters a call whose waiter gave up.
func (c *Client) abandon(cl *call) {
	c.pendMu.Lock()
	delete(c.pending, cl.env.ID)
	delete(c.batchAsm, cl.env.ID)
	c.pendMu.Unlock()
}

func (c *Client) roundTrip(env *envelope) (*replyEnvelope, error) {
	return c.roundTripCtx(context.Background(), env)
}

func (c *Client) roundTripCtx(ctx context.Context, env *envelope) (*replyEnvelope, error) {
	cl, err := c.send(env)
	if err != nil {
		return nil, err
	}
	return c.waitCtx(ctx, cl)
}

// Close tears down the connection; pending requests fail with an error
// wrapping serve.ErrConnClosed.
func (c *Client) Close() error {
	c.teardown()
	return c.closeErr
}

// Protocol reports the negotiated wire protocol: "v3" or "gob".
func (c *Client) Protocol() string { return c.proto }

// Checksums reports whether per-frame CRC32C trailers were negotiated.
func (c *Client) Checksums() bool {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.crc
}

// Profile reports the security profile the session runs on. On legacy
// paths (gob, pre-profile servers) this is the registry default the
// server pins such sessions to.
func (c *Client) Profile() string { return c.prof.ID }

// Slots returns the per-block capacity.
func (c *Client) Slots() int { return c.cipher.Slots() }

// SessionID returns the session this client registered.
func (c *Client) SessionID() string { return c.sessionID }

// Epoch returns the client's current key epoch.
func (c *Client) Epoch() uint64 {
	c.keyMu.Lock()
	defer c.keyMu.Unlock()
	return c.epoch
}

// mask pads and masks one block under a consistent snapshot of the
// current key material, returning the epoch it was masked under.
func (c *Client) mask(block uint32, data []float64) ([]float64, uint64, error) {
	padded := make([]float64, c.Slots())
	copy(padded, data)
	c.keyMu.Lock()
	key, nonce, epoch := c.key, c.nonce, c.epoch
	c.keyMu.Unlock()
	masked, err := c.cipher.Mask(key, nonce, block, padded)
	if err != nil {
		return nil, 0, fmt.Errorf("edge: mask: %w", err)
	}
	return masked, epoch, nil
}

// decrypt recovers the slot values of an encrypted result.
func (c *Client) decrypt(ct *ckks.Ciphertext) []float64 {
	c.evMu.Lock()
	pt := c.ev.Decrypt(c.sk, ct)
	c.evMu.Unlock()
	return c.encoder.DecodeReal(pt)
}

func (c *Client) noteReply(tx, cmp float64, rekeyNeeded bool, epoch uint64) {
	c.statMu.Lock()
	c.LastTxDelay, c.LastCmpDelay = tx, cmp
	if rekeyNeeded {
		c.rekeyAdvisedEpoch = epoch
	}
	c.statMu.Unlock()
}

// RekeyAdvised reports whether the server has flagged the key byte budget
// as nearly exhausted for the client's current key epoch.
func (c *Client) RekeyAdvised() bool {
	c.statMu.Lock()
	advised := c.rekeyAdvisedEpoch
	c.statMu.Unlock()
	return advised != 0 && advised == c.Epoch()
}

// Pending is one in-flight Compute request.
type Pending struct {
	c     *Client
	cl    *call
	n     int
	block uint32
	epoch uint64
	// spans is the block's client-side trace (nil when unsampled);
	// sendDone anchors the wait span.
	spans    *clientSpans
	sendDone time.Time
}

// Epoch returns the key epoch the request's block was masked under — pass
// it to RekeyIfEpoch when Wait fails with serve.ErrRekeyRequired.
func (p *Pending) Epoch() uint64 { return p.epoch }

// ComputeAsync masks one block and sends it without waiting: multiple
// requests may be in flight on the connection, and the server fans them
// out across its worker pool. block must be unique per call within a
// session and key epoch.
func (c *Client) ComputeAsync(block uint32, data []float64) (*Pending, error) {
	if len(data) > c.Slots() {
		return nil, fmt.Errorf("edge: %d values exceed %d slots", len(data), c.Slots())
	}
	start := time.Now()
	tc := c.tracer.sampleTrace()
	var spans *clientSpans
	if tc.Valid() {
		spans = c.tracer.begin(tc, block, 0, start)
	}
	masked, epoch, err := c.mask(block, data)
	if err != nil {
		return nil, err
	}
	spans.span(cstageMask, start)
	req := &ComputeRequest{
		SessionID: c.sessionID, Block: block, Masked: masked, Epoch: epoch,
	}
	if c.traceWire.Load() {
		req.Trace = tc
	}
	submitStart := time.Now()
	cl, err := c.send(&envelope{Compute: req})
	if err != nil {
		return nil, err
	}
	spans.span(cstageSubmit, submitStart)
	if spans != nil {
		spans.bt.ReqID = cl.env.ID
	}
	return &Pending{
		c: c, cl: cl, n: len(data), block: block, epoch: epoch,
		spans: spans, sendDone: time.Now(),
	}, nil
}

// Wait blocks for the reply and decrypts the result. Server-side
// failures carry typed codes: errors.Is against serve.ErrOverloaded,
// serve.ErrRekeyRequired, serve.ErrUnknownSession, ... selects the class.
func (p *Pending) Wait() ([]float64, error) {
	return p.WaitCtx(context.Background())
}

// WaitCtx is Wait bounded by ctx (in addition to the configured
// RequestTimeout); expiry fails with an error wrapping serve.ErrDeadline.
func (p *Pending) WaitCtx(ctx context.Context) ([]float64, error) {
	reply, err := p.c.waitCtx(ctx, p.cl)
	if p.spans != nil {
		p.spans.span(cstageWait, p.sendDone)
		p.spans.finish()
		p.spans = nil
	}
	if err != nil {
		return nil, err
	}
	rep := reply.Compute
	if rep == nil {
		rep = reply.MatVec // matvec replies share the Compute layout
	}
	if rep == nil {
		return nil, errors.New("edge: malformed reply")
	}
	p.c.noteReply(rep.ModeledTxDelay, rep.ModeledCmpDelay, rep.RekeyNeeded, p.epoch)
	if rep.Code != serve.CodeOK || rep.Err != "" {
		return nil, replyError(rep.Code, rep.Err)
	}
	if rep.Result == nil {
		return nil, errors.New("edge: malformed reply: missing result")
	}
	out := p.c.decrypt(rep.Result)
	return out[:p.n], nil
}

// retryBudget resolves the unified retry policy's attempt cap.
func (c *Client) retryBudget() int {
	if c.dcfg.RetryBudget > 0 {
		return c.dcfg.RetryBudget
	}
	return defaultRetryBudget
}

// retrySleep applies the unified retry policy's jittered backoff and
// counts the retry.
func (c *Client) retrySleep(attempt int) {
	c.retries.Add(1)
	start := time.Now()
	time.Sleep(c.jitter(attempt, retryBackoffBase, retryBackoffMax))
	c.tracer.event(cstageRetry, start)
}

// Compute runs one full pipeline round: mask data under the symmetric key,
// upload, let the server transcipher + infer, then decrypt the encrypted
// result locally. block must be unique per call within a session and key
// epoch. With a key centre attached (DialQKD), Compute rekeys
// transparently: proactively when the server advises the byte budget is
// nearly spent, and under the retry budget when the server demands it.
func (c *Client) Compute(block uint32, data []float64) ([]float64, error) {
	return c.ComputeCtx(context.Background(), block, data)
}

// ComputeCtx is Compute bounded by ctx (in addition to the configured
// RequestTimeout); expiry fails with an error wrapping serve.ErrDeadline.
func (c *Client) ComputeCtx(ctx context.Context, block uint32, data []float64) ([]float64, error) {
	return c.retryLoop(ctx, func() (*Pending, error) { return c.ComputeAsync(block, data) })
}

// retryLoop is the unified retry policy shared by the synchronous
// single-block entry points (Compute, MatVec): submit, wait, and rekey
// transparently when the server demands it and a key centre is attached.
func (c *Client) retryLoop(ctx context.Context, submit func() (*Pending, error)) ([]float64, error) {
	for attempt := 0; ; attempt++ {
		p, err := submit()
		if err != nil {
			return nil, err
		}
		out, err := p.WaitCtx(ctx)
		if err != nil {
			if errors.Is(err, serve.ErrRekeyRequired) && attempt < c.retryBudget() && c.kc != nil {
				if rkErr := c.RekeyIfEpoch(p.Epoch()); rkErr == nil {
					c.retrySleep(attempt)
					continue
				}
			}
			return nil, err
		}
		if c.RekeyAdvised() && c.kc != nil {
			// Best-effort proactive rotation; a failure (e.g. depleted
			// pool) surfaces on the next hard budget rejection.
			_ = c.RekeyIfEpoch(p.Epoch())
		}
		return out, nil
	}
}

// MatVecDim reports the dimension of the server's packed model matrix:
// the vector length MatVec accepts and the rotation set EnableMatVec
// generates keys for. Zero means encrypted matvec is unavailable on this
// connection — the peer predates it, the hello did not negotiate it, or
// the server holds no matrix.
func (c *Client) MatVecDim() int { return c.mvDim }

// EnableMatVec generates the Galois rotation keys the server's hoisted
// BSGS matrix–vector kernel needs (ckks.BSGSRotations of the advertised
// dimension) and installs them on the server-side session. Call once
// after Dial, before the first MatVec; repeated calls are no-ops. The
// keys are public evaluation material: they live on the session, so they
// survive rekeys and reconnect-and-resume without a re-upload. Fails
// with an error wrapping serve.ErrMatVecUnavailable when the connection
// did not negotiate matvec.
func (c *Client) EnableMatVec() error {
	return c.EnableMatVecCtx(context.Background())
}

// EnableMatVecCtx is EnableMatVec bounded by ctx (in addition to the
// configured RequestTimeout).
func (c *Client) EnableMatVecCtx(ctx context.Context) error {
	if c.mvDim == 0 {
		return fmt.Errorf("edge: %w: connection did not negotiate matvec", serve.ErrMatVecUnavailable)
	}
	c.rotMu.Lock()
	defer c.rotMu.Unlock()
	if c.rotInstalled {
		return nil
	}
	// Rotation-key generation is pure public-material derivation from the
	// secret key (read-only after dial); the offset keeps the generator's
	// stream disjoint from the dial-time keygen and evaluator streams.
	kg := ckks.NewKeyGenerator(c.ctx, c.seed+2)
	gks := kg.GenGaloisKeys(c.sk, ckks.BSGSRotations(c.mvDim))
	reply, err := c.roundTripCtx(ctx, &envelope{RotKeys: &RotKeysRequest{
		SessionID: c.sessionID, Keys: gks,
	}})
	if err != nil {
		return fmt.Errorf("edge: rotation keys: %w", err)
	}
	rep := reply.RotKeys
	if rep == nil {
		return errors.New("edge: malformed reply")
	}
	if !rep.OK {
		return fmt.Errorf("edge: rotation keys rejected: %w", replyError(rep.Code, rep.Err))
	}
	c.rotInstalled = true
	return nil
}

// MatVec runs one encrypted matrix–vector round: mask the input vector
// under the symmetric key, upload, let the server transcipher and apply
// its packed model matrix with the hoisted BSGS kernel under the
// session's rotation keys, then decrypt the product locally. data holds
// up to MatVecDim values (shorter vectors are zero-padded); the result
// always has MatVecDim values. block must be unique per call within a
// session and key epoch, sharing the Compute block space. Requires
// EnableMatVec first; rekeys transparently like Compute.
func (c *Client) MatVec(block uint32, data []float64) ([]float64, error) {
	return c.MatVecCtx(context.Background(), block, data)
}

// MatVecCtx is MatVec bounded by ctx (in addition to the configured
// RequestTimeout); expiry fails with an error wrapping serve.ErrDeadline.
func (c *Client) MatVecCtx(ctx context.Context, block uint32, data []float64) ([]float64, error) {
	return c.retryLoop(ctx, func() (*Pending, error) { return c.MatVecAsync(block, data) })
}

// MatVecAsync masks one input vector and sends it without waiting,
// mirroring ComputeAsync. The vector is replicated across the slot space
// (slot j carries v[j mod dim]) because the BSGS kernel's giant-step
// windows read the full vector at every offset. On reconnect, in-flight
// matvec requests are failed typed rather than replayed — the rotation
// keys survive server-side, so the caller just resubmits.
func (c *Client) MatVecAsync(block uint32, data []float64) (*Pending, error) {
	dim := c.mvDim
	if dim == 0 {
		return nil, fmt.Errorf("edge: %w: connection did not negotiate matvec", serve.ErrMatVecUnavailable)
	}
	if len(data) > dim {
		return nil, fmt.Errorf("edge: %d values exceed matrix dimension %d", len(data), dim)
	}
	start := time.Now()
	tc := c.tracer.sampleTrace()
	var spans *clientSpans
	if tc.Valid() {
		spans = c.tracer.begin(tc, block, 0, start)
	}
	full := make([]float64, c.Slots())
	for j := range full {
		if k := j % dim; k < len(data) {
			full[j] = data[k]
		}
	}
	masked, epoch, err := c.mask(block, full)
	if err != nil {
		return nil, err
	}
	spans.span(cstageMask, start)
	req := &ComputeRequest{
		SessionID: c.sessionID, Block: block, Masked: masked, Epoch: epoch,
	}
	if c.traceWire.Load() {
		req.Trace = tc
	}
	submitStart := time.Now()
	cl, err := c.send(&envelope{MatVec: req})
	if err != nil {
		return nil, err
	}
	spans.span(cstageSubmit, submitStart)
	if spans != nil {
		spans.bt.ReqID = cl.env.ID
	}
	return &Pending{
		c: c, cl: cl, n: dim, block: block, epoch: epoch,
		spans: spans, sendDone: time.Now(),
	}, nil
}

// errEpochRotated signals that a batch's mask pass straddled a concurrent
// key rotation; the unified retry policy re-masks under the new epoch.
var errEpochRotated = errors.New("edge: key rotated mid-batch")

// ComputeBatch masks blocks start..start+len(data)-1 and uploads them as
// one BatchRequest the server fans out across its pool. On the v3
// protocol the per-item results stream back as each worker finishes (the
// call still returns once the whole batch completes); on gob the reply
// arrives as one buffered message. Results are in input order; items can
// fail independently (e.g. shed with serve.ErrOverloaded), in which case
// their slots are nil and the first failure is returned as a typed error
// alongside the partial results. A mask pass straddling a concurrent key
// rotation, or a server-demanded rekey (key centre attached), retries
// transparently under the retry budget.
func (c *Client) ComputeBatch(start uint32, data [][]float64) ([][]float64, error) {
	return c.ComputeBatchCtx(context.Background(), start, data)
}

// ComputeBatchCtx is ComputeBatch bounded by ctx (in addition to the
// configured RequestTimeout); expiry fails with an error wrapping
// serve.ErrDeadline.
func (c *Client) ComputeBatchCtx(ctx context.Context, start uint32, data [][]float64) ([][]float64, error) {
	for attempt := 0; ; attempt++ {
		out, epoch, err := c.computeBatchOnce(ctx, start, data)
		switch {
		case err == nil:
			return out, nil
		case errors.Is(err, errEpochRotated) && attempt < c.retryBudget():
			// Another goroutine rotated the key while this batch was
			// masking: re-mask everything under the new epoch.
			c.retrySleep(attempt)
		case errors.Is(err, serve.ErrRekeyRequired) && c.kc != nil && attempt < c.retryBudget():
			if rkErr := c.RekeyIfEpoch(epoch); rkErr != nil {
				return out, err
			}
			c.retrySleep(attempt)
		default:
			return out, err
		}
	}
}

func (c *Client) computeBatchOnce(ctx context.Context, start uint32, data [][]float64) ([][]float64, uint64, error) {
	n := len(data)
	if n == 0 {
		return nil, 0, nil
	}
	if n > MaxBatch {
		return nil, 0, fmt.Errorf("edge: batch of %d blocks exceeds %d", n, MaxBatch)
	}
	blocks := make([]uint32, n)
	masked := make([][]float64, n)
	var epoch uint64
	for i, d := range data {
		if len(d) > c.Slots() {
			return nil, 0, fmt.Errorf("edge: %d values exceed %d slots", len(d), c.Slots())
		}
		m, e, err := c.mask(start+uint32(i), d)
		if err != nil {
			return nil, 0, err
		}
		if i == 0 {
			epoch = e
		} else if e != epoch {
			return nil, epoch, errEpochRotated
		}
		blocks[i], masked[i] = start+uint32(i), m
	}
	reply, err := c.roundTripCtx(ctx, &envelope{Batch: &BatchRequest{
		SessionID: c.sessionID, Epoch: epoch, Blocks: blocks, Masked: masked,
	}})
	if err != nil {
		return nil, epoch, err
	}
	rep := reply.Batch
	if rep == nil {
		return nil, epoch, errors.New("edge: malformed reply")
	}
	if rep.Code != serve.CodeOK {
		return nil, epoch, replyError(rep.Code, rep.Err)
	}
	if len(rep.Items) != n {
		return nil, epoch, fmt.Errorf("edge: batch reply with %d items, want %d", len(rep.Items), n)
	}
	c.noteReply(rep.ModeledTxDelay, rep.ModeledCmpDelay, rep.RekeyNeeded, epoch)
	out := make([][]float64, n)
	var firstErr error
	for i := range rep.Items {
		item := &rep.Items[i]
		if item.Code != serve.CodeOK || item.Result == nil {
			if firstErr == nil {
				itemErr := replyError(item.Code, item.Err)
				if itemErr == nil {
					itemErr = errors.New("missing result")
				}
				firstErr = fmt.Errorf("edge: batch item %d: %w", i, itemErr)
			}
			continue
		}
		vals := c.decrypt(item.Result)
		out[i] = vals[:len(data[i])]
	}
	return out, epoch, firstErr
}

// Rekey withdraws fresh QKD material from the attached key centre and
// rotates the session's transciphering key. Requires DialQKD. A depleted
// pool fails with a *serve.KeyExhaustedError (wrapping
// serve.ErrKeyExhausted) whose RetryAfter estimates when the pool's
// provisioning rate will have covered the shortfall.
func (c *Client) Rekey() error {
	return c.RekeyCtx(context.Background())
}

// RekeyCtx is Rekey bounded by ctx (in addition to the configured
// RequestTimeout); expiry fails with an error wrapping serve.ErrDeadline.
func (c *Client) RekeyCtx(ctx context.Context) error {
	c.rekeyMu.Lock()
	defer c.rekeyMu.Unlock()
	return c.rekeyLocked(ctx, qkd.CauseReplan)
}

// RekeyIfEpoch rotates the key only if the client is still at the given
// epoch, collapsing the rekey attempts of many concurrently failed
// in-flight requests into a single withdrawal: the first failure rotates,
// the rest see the bumped epoch and simply retry under the new key.
// Requires DialQKD.
func (c *Client) RekeyIfEpoch(epoch uint64) error {
	c.rekeyMu.Lock()
	defer c.rekeyMu.Unlock()
	if c.Epoch() != epoch {
		return nil // another request already rotated past this epoch
	}
	return c.rekeyLocked(context.Background(), qkd.CauseBudgetRekey)
}

// rekeyLocked draws fresh material and rotates; callers hold rekeyMu.
// The withdrawal is attributed in the key-flow ledger under cause —
// except that the first rotation after a successful resume is recorded
// as resume-rotation regardless of what triggered it, so ledger readers
// can separate hygiene rotations from budget- and plan-driven ones.
func (c *Client) rekeyLocked(ctx context.Context, cause string) error {
	if c.kc == nil {
		return errors.New("edge: rekey: no key centre attached (use DialQKD)")
	}
	if c.resumedSinceRekey.Load() {
		cause = qkd.CauseResumeRotation
	}
	material, err := c.kc.WithdrawAttributed(c.sessionID, RekeyWithdrawBytes, qkd.Attribution{
		Route: c.dcfg.Route, Profile: c.prof.ID, Cause: cause,
	})
	if err != nil {
		if errors.Is(err, qkd.ErrInsufficientKey) {
			return fmt.Errorf("edge: rekey withdraw: %w",
				serve.NewKeyExhausted(c.keyRetryAfter(), err.Error()))
		}
		return fmt.Errorf("edge: rekey withdraw: %w", err)
	}
	return c.rekeyWith(ctx, material)
}

// keyRetryAfter estimates how long the key centre needs to provision the
// shortfall for the next withdrawal, from its secret-key rate (bits/s).
func (c *Client) keyRetryAfter() time.Duration {
	avail, err := c.kc.Available(c.sessionID)
	if err != nil {
		avail = 0
	}
	deficit := RekeyWithdrawBytes - avail
	if deficit <= 0 {
		return 0
	}
	rate, err := c.kc.Rate(c.sessionID)
	if err != nil || rate <= 0 {
		return 0
	}
	return time.Duration(float64(deficit*8) / rate * float64(time.Second))
}

// RekeyWith rotates the session's transciphering key using explicit fresh
// QKD material: the new key is derived, HE-encrypted and installed on the
// server, which bumps the session's key epoch and resets its byte budget.
// Requests already in flight under the old epoch are rejected by the
// server with serve.ErrRekeyRequired rather than mis-transciphered.
func (c *Client) RekeyWith(qkdKey []byte) error {
	c.rekeyMu.Lock()
	defer c.rekeyMu.Unlock()
	return c.rekeyWith(context.Background(), qkdKey)
}

func (c *Client) rekeyWith(ctx context.Context, qkdKey []byte) error {
	rekeyStart := time.Now()
	key, err := c.cipher.DeriveKey(qkdKey)
	if err != nil {
		return fmt.Errorf("edge: rekey derive: %w", err)
	}
	c.keyMu.Lock()
	nextEpoch := c.epoch + 1
	c.keyMu.Unlock()
	nonce := nonceFor(c.sessionID, nextEpoch)
	c.evMu.Lock()
	encKey, err := c.cipher.EncryptKey(c.ev, c.pk, key)
	c.evMu.Unlock()
	if err != nil {
		return fmt.Errorf("edge: rekey encrypt: %w", err)
	}
	// The resume credential is derived from the QKD material, so it
	// rotates with the key.
	var auth []byte
	if c.resume {
		auth = deriveResumeAuth(qkdKey)
	}
	reply, err := c.roundTripCtx(ctx, &envelope{Rekey: &RekeyRequest{
		SessionID: c.sessionID, EncKey: encKey, Nonce: nonce, ResumeAuth: auth,
	}})
	if err != nil {
		return err
	}
	rep := reply.Rekey
	if rep == nil {
		return errors.New("edge: malformed reply")
	}
	if !rep.OK {
		return fmt.Errorf("edge: rekey rejected: %w", replyError(rep.Code, rep.Err))
	}
	c.keyMu.Lock()
	c.key, c.nonce, c.epoch = key, nonce, rep.Epoch
	if c.resume {
		c.resumeAuth = auth
	}
	c.keyMu.Unlock()
	c.statMu.Lock()
	c.rekeyAdvisedEpoch = 0
	c.statMu.Unlock()
	c.resumedSinceRekey.Store(false)
	c.tracer.event(cstageRekey, rekeyStart)
	return nil
}
