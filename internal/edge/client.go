package edge

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"quhe/internal/he/ckks"
	"quhe/internal/he/profile"
	"quhe/internal/qkd"
	"quhe/internal/serve"
	"quhe/internal/transcipher"
)

// RekeyWithdrawBytes is the QKD key material drawn from the key centre
// per transciphering key (initial setup and every rekey).
const RekeyWithdrawBytes = 32

// Protocol selects the wire protocol a Client dials with.
type Protocol int

const (
	// ProtoAuto negotiates the framed v3 protocol and falls back to gob
	// (v2) when the server predates it. The default.
	ProtoAuto Protocol = iota
	// ProtoV3 requires protocol v3: dialing an older server fails with
	// ErrProtocolMismatch instead of falling back.
	ProtoV3
	// ProtoGob forces the legacy gob (v2) protocol even against a v3
	// server.
	ProtoGob
)

// DialConfig carries optional Dial knobs.
type DialConfig struct {
	// Protocol selects the wire protocol; zero value is ProtoAuto.
	Protocol Protocol
	// Checksum requests per-frame CRC32C trailers at the v3 handshake
	// (integrity on untrusted links). Effective only when the server
	// accepts (ServerConfig.FrameChecksums); against older servers the
	// request is silently ignored and the connection runs un-trailed —
	// Client.Checksums reports the negotiated state.
	Checksum bool
	// Profile requests a security profile for the session. Empty lets
	// the server (its control plane's per-route λ plan) steer; a concrete
	// ID is granted or downgraded per the active plan — Client.Profile
	// reports what the session actually runs. Against peers that predate
	// profile negotiation (gob servers, pre-profile v3 servers) only the
	// empty or default request succeeds; anything else fails with an
	// error wrapping serve.ErrProfileDenied rather than silently running
	// at the wrong security level.
	Profile string
	// Profiles overrides the profile registry (nil = profile.Default()).
	// It must agree with the server's registry for non-default profiles.
	Profiles *profile.Registry
}

// negotiateTimeout bounds the wait for the server's v3 hello ack. Legacy
// servers close the connection as soon as the hello fails to gob-decode,
// so the deadline only bites against a hung peer.
const negotiateTimeout = 5 * time.Second

// Client is a QuHE edge client node: it owns the HE secret key, masks data
// under the QKD-derived symmetric key, and decrypts the server's encrypted
// results. One Client drives one TCP connection, by default over the
// framed v3 protocol (falling back to pipelined gob v2 against older
// servers): ComputeAsync/ComputeBatch keep multiple requests in flight and
// a reader goroutine matches out-of-order replies by request ID. Safe for
// concurrent use.
type Client struct {
	sessionID string
	conn      net.Conn

	// proto is "v3" or "gob" once negotiated.
	proto string
	// crc reports that per-frame CRC32C trailers were negotiated.
	crc bool
	// prof is the security profile the session runs on; wireProfile is
	// the profile ID carried in Setup ("" on legacy paths, where the
	// server pins the session to its default).
	prof        *profile.Profile
	wireProfile string
	// v3 transport: framed writes through fw, framed reads off br.
	fw *frameWriter
	br *bufio.Reader
	// gob transport: writeMu serializes enc.
	writeMu sync.Mutex
	enc     *gob.Encoder

	closeOnce sync.Once
	closeErr  error

	ctx     *ckks.Context
	cipher  *transcipher.Cipher
	encoder *ckks.Encoder

	// evMu guards the evaluator (shared scratch buffers and RNG): key
	// encryption on dial/rekey and result decryption on Wait.
	evMu sync.Mutex
	ev   *ckks.Evaluator
	sk   *ckks.SecretKey
	pk   *ckks.PublicKey

	// kc, when attached via DialQKD, sources rekey withdrawals.
	kc      *qkd.KeyCenter
	rekeyMu sync.Mutex

	keyMu sync.Mutex
	key   []float64
	nonce []byte
	epoch uint64

	nextID  atomic.Uint64
	pendMu  sync.Mutex
	pending map[uint64]chan *replyEnvelope
	// batchAsm assembles streamed v3 batch items by request ID until the
	// batch trailer arrives.
	batchAsm map[uint64]*BatchReply
	readErr  error

	// statMu guards the modeled-delay echoes and the rekey advice.
	// rekeyAdvisedEpoch is the key epoch the server's advice applied to
	// (0 = none): tagging the advice with its epoch keeps a stale reply —
	// one that raced a completed rekey — from triggering a second,
	// wasteful rotation.
	statMu            sync.Mutex
	rekeyAdvisedEpoch uint64

	// LastTxDelay and LastCmpDelay echo the server's modeled costs of the
	// most recently completed Compute call. They are only meaningful when
	// read with no request in flight.
	LastTxDelay  float64
	LastCmpDelay float64
}

// Dial connects to an edge server, generates the client's HE keys, derives
// the transciphering key from qkdKey (e.g. material withdrawn from the
// qkd.KeyCenter), and registers the session.
func Dial(addr, sessionID string, qkdKey []byte, seed int64) (*Client, error) {
	return dial(addr, sessionID, qkdKey, nil, seed, DialConfig{})
}

// DialWith is Dial with explicit configuration (e.g. a forced wire
// protocol).
func DialWith(addr, sessionID string, qkdKey []byte, seed int64, cfg DialConfig) (*Client, error) {
	return dial(addr, sessionID, qkdKey, nil, seed, cfg)
}

// DialQKD is Dial with the key plane attached: the initial transciphering
// key is withdrawn from the key centre's pool for sessionID, and the key
// centre stays attached so Rekey (and the automatic rekey on
// serve.ErrRekeyRequired) can draw fresh material.
func DialQKD(addr, sessionID string, kc *qkd.KeyCenter, seed int64) (*Client, error) {
	return DialQKDWith(addr, sessionID, kc, seed, DialConfig{})
}

// DialQKDWith is DialQKD with explicit configuration.
func DialQKDWith(addr, sessionID string, kc *qkd.KeyCenter, seed int64, cfg DialConfig) (*Client, error) {
	if kc == nil {
		return nil, errors.New("edge: nil key centre")
	}
	material, err := kc.Withdraw(sessionID, RekeyWithdrawBytes)
	if err != nil {
		return nil, fmt.Errorf("edge: qkd withdraw: %w", err)
	}
	return dial(addr, sessionID, material, kc, seed, cfg)
}

func dial(addr, sessionID string, qkdKey []byte, kc *qkd.KeyCenter, seed int64, dcfg DialConfig) (*Client, error) {
	return dialAttempt(addr, sessionID, qkdKey, kc, seed, dcfg, 0)
}

func dialAttempt(addr, sessionID string, qkdKey []byte, kc *qkd.KeyCenter, seed int64, dcfg DialConfig, attempt int) (*Client, error) {
	if sessionID == "" {
		return nil, errors.New("edge: empty session id")
	}
	if seed == 0 {
		seed = 1
	}
	reg := dcfg.Profiles
	if reg == nil {
		reg = profile.Default()
	}
	if dcfg.Profile != "" {
		if _, ok := reg.Get(dcfg.Profile); !ok {
			return nil, fmt.Errorf("edge: %w: unknown profile %q", serve.ErrProfileDenied, dcfg.Profile)
		}
	}

	conn, br, proto, crc, profiles, rnsWire, err := negotiate(addr, dcfg.Protocol, dcfg.Checksum)
	if err != nil {
		return nil, err
	}
	if proto == "v3" && !rnsWire {
		// A v3 server that does not ack the residue-tower wire format
		// predates the limb layout: its frames would misparse ours and vice
		// versa, so fail typed instead of exchanging garbage.
		conn.Close()
		return nil, fmt.Errorf("edge: %w: server lacks residue-tower wire support", serve.ErrWireFormat)
	}
	// Profile resolution happens before key generation so a plan-steered
	// or downgraded profile never costs a wasted keygen. Peers that do
	// not negotiate pin the session to the default profile; an explicit
	// non-default request against them is a hard typed failure.
	prof := reg.Default()
	wireProfile := ""
	if proto == "v3" && profiles {
		granted, err := queryProfile(conn, br, crc, sessionID, dcfg.Profile)
		if err != nil {
			conn.Close()
			return nil, err
		}
		p, ok := reg.Get(granted)
		if !ok {
			conn.Close()
			return nil, fmt.Errorf("edge: %w: server granted unknown profile %q", serve.ErrProfileDenied, granted)
		}
		prof, wireProfile = p, granted
	} else if dcfg.Profile != "" && dcfg.Profile != reg.DefaultID() {
		conn.Close()
		return nil, fmt.Errorf("edge: %w: peer does not negotiate profiles (requested %q)",
			serve.ErrProfileDenied, dcfg.Profile)
	}

	ctx, err := prof.Context()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("edge: context: %w", err)
	}
	cipher, err := transcipher.New(ctx, KeyLen)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("edge: cipher: %w", err)
	}
	kg := ckks.NewKeyGenerator(ctx, seed)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	ev := ckks.NewEvaluator(ctx, seed+1)

	key, err := cipher.DeriveKey(qkdKey)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("edge: derive key: %w", err)
	}
	encKey, err := cipher.EncryptKey(ev, pk, key)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("edge: encrypt key: %w", err)
	}

	c := &Client{
		sessionID:   sessionID,
		conn:        conn,
		proto:       proto,
		crc:         crc,
		prof:        prof,
		wireProfile: wireProfile,
		ctx:         ctx,
		cipher:      cipher,
		encoder:     ckks.NewEncoder(ctx),
		ev:          ev,
		sk:          sk,
		pk:          pk,
		kc:          kc,
		key:         key,
		nonce:       nonceFor(sessionID, 1),
		epoch:       1,
		pending:     make(map[uint64]chan *replyEnvelope),
	}
	if proto == "v3" {
		c.fw = newFrameWriter(conn, c.teardown, nil)
		c.fw.crc = crc
		c.br = br
		c.batchAsm = make(map[uint64]*BatchReply)
	} else {
		c.enc = gob.NewEncoder(conn)
	}
	go c.readLoop()

	reply, err := c.roundTrip(&envelope{Setup: &SetupRequest{
		SessionID: sessionID,
		LogN:      ctx.Params.LogN,
		Depth:     ctx.Params.Depth,
		PK:        pk,
		RLK:       rlk,
		EncKey:    encKey,
		Nonce:     c.nonce,
		Profile:   wireProfile,
	}})
	if err != nil {
		c.teardown()
		return nil, fmt.Errorf("edge: setup: %w", err)
	}
	if reply.Setup == nil {
		c.teardown()
		return nil, errors.New("edge: setup rejected: missing reply")
	}
	if !reply.Setup.OK {
		c.teardown()
		setupErr := replyError(reply.Setup.Code, reply.Setup.Err)
		// A profile grant can go stale between the query and Setup when a
		// replan moves the route's λ mid-dial: renegotiate from scratch
		// (fresh connection, fresh grant, fresh keys) a bounded number of
		// times before surfacing the typed denial.
		if errors.Is(setupErr, serve.ErrProfileDenied) && proto == "v3" && profiles && attempt < 2 {
			return dialAttempt(addr, sessionID, qkdKey, kc, seed, dcfg, attempt+1)
		}
		return nil, fmt.Errorf("edge: setup rejected: %w", setupErr)
	}
	if reply.Setup.Profile != "" && reply.Setup.Profile != wireProfile {
		c.teardown()
		return nil, fmt.Errorf("edge: %w: registered on %q, granted %q",
			serve.ErrProfileDenied, reply.Setup.Profile, wireProfile)
	}
	return c, nil
}

// queryProfile runs the synchronous pre-Setup profile negotiation on a
// freshly handshaken v3 connection (the read loop is not running yet, so
// the reply is consumed inline like the hello ack).
func queryProfile(conn net.Conn, br *bufio.Reader, crc bool, sessionID, requested string) (string, error) {
	f := beginFrame(nil, frameProfile, 0)
	f = appendProfileRequest(f, &ProfileRequest{SessionID: sessionID, Requested: requested})
	f, err := finishFrame(f, 0)
	if err != nil {
		return "", err
	}
	if crc {
		f = binary.LittleEndian.AppendUint32(f, crc32.Checksum(f, crcTable))
	}
	if _, err := conn.Write(f); err != nil {
		return "", fmt.Errorf("edge: profile query: %w", err)
	}
	conn.SetReadDeadline(time.Now().Add(negotiateTimeout))
	defer conn.SetReadDeadline(time.Time{})
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	ftype, _, payload, err := readFrameCRC(br, buf, crc)
	if err != nil {
		return "", fmt.Errorf("edge: profile query: %w", err)
	}
	if ftype != frameProfileReply {
		return "", fmt.Errorf("%w: unexpected frame type %d in profile negotiation", ErrBadFrame, ftype)
	}
	rep, err := decodeProfileReply(payload)
	if err != nil {
		return "", err
	}
	if rep.Code != serve.CodeOK {
		return "", fmt.Errorf("edge: profile rejected: %w", replyError(rep.Code, rep.Err))
	}
	if rep.Granted == "" {
		return "", errors.New("edge: profile negotiation granted nothing")
	}
	return rep.Granted, nil
}

// negotiate establishes the transport for the requested protocol. For v3
// it performs the hello handshake: a server that acks speaks v3; one that
// kills the connection (a gob-era server choking on the frame magic)
// triggers a redial on the gob path under ProtoAuto, or
// ErrProtocolMismatch under ProtoV3. wantCRC requests per-frame CRC32C
// trailers in the hello flags; crc reports whether the server granted
// them (pre-checksum servers ack with an empty payload, read as "no").
// profiles and rnsWire report whether the server advertised
// security-profile negotiation and the residue-tower ciphertext wire
// format in its ack flags.
func negotiate(addr string, p Protocol, wantCRC bool) (conn net.Conn, br *bufio.Reader, proto string, crc, profiles, rnsWire bool, err error) {
	dialGob := func() (net.Conn, *bufio.Reader, string, bool, bool, bool, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, nil, "", false, false, false, fmt.Errorf("edge: dial: %w", err)
		}
		return conn, nil, "gob", false, false, false, nil
	}
	if p == ProtoGob {
		return dialGob()
	}
	conn, err = net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, "", false, false, false, fmt.Errorf("edge: dial: %w", err)
	}
	// The hello always carries a flags byte: profile support and the
	// residue-tower wire format are advertised unconditionally (servers
	// that predate them ignore unknown bits and ack without the flags),
	// CRC only on request.
	flags := byte(helloFlagProfiles | helloFlagRNSWire)
	if wantCRC {
		flags |= helloFlagCRC
	}
	hello := beginFrame(nil, frameHello, 0)
	hello = append(hello, flags)
	hello, _ = finishFrame(hello, 0)
	var ftype byte
	var ackPayload []byte
	_, werr := conn.Write(hello)
	err = werr
	br = bufio.NewReaderSize(conn, wireBufSize)
	if err == nil {
		conn.SetReadDeadline(time.Now().Add(negotiateTimeout))
		buf := getFrameBuf()
		ftype, _, ackPayload, err = readFrame(br, buf)
		if err == nil && len(ackPayload) >= 1 {
			crc = wantCRC && ackPayload[0]&helloFlagCRC != 0
			profiles = ackPayload[0]&helloFlagProfiles != 0
			rnsWire = ackPayload[0]&helloFlagRNSWire != 0
		}
		putFrameBuf(buf)
		conn.SetReadDeadline(time.Time{})
	}
	if err == nil && ftype == frameHello {
		return conn, br, "v3", crc, profiles, rnsWire, nil
	}
	conn.Close()
	if p == ProtoV3 {
		return nil, nil, "", false, false, false, fmt.Errorf("%w (hello failed: %v)", ErrProtocolMismatch, err)
	}
	return dialGob()
}

// nonceFor derives the per-epoch masking nonce: epoch and a session-ID
// hash packed into the cipher's 12-byte nonce space, so rekeys never
// reuse a (key, nonce) pair even for long session IDs.
func nonceFor(sessionID string, epoch uint64) []byte {
	h := fnv.New32a()
	h.Write([]byte(sessionID))
	nonce := make([]byte, 12)
	binary.LittleEndian.PutUint64(nonce[:8], epoch)
	binary.LittleEndian.PutUint32(nonce[8:], h.Sum32())
	return nonce
}

// replyError reconstructs a typed error from a wire code and detail, so
// callers can branch with errors.Is against the serve sentinels.
func replyError(code serve.Code, detail string) error {
	sentinel := code.Err()
	if sentinel == nil {
		if detail == "" {
			return nil
		}
		return fmt.Errorf("edge: server: %s", detail)
	}
	if detail == "" {
		return fmt.Errorf("edge: server: %w", sentinel)
	}
	return fmt.Errorf("edge: server: %w: %s", sentinel, detail)
}

// teardown closes the connection exactly once; the writer's failure path,
// the read loop and Close all funnel through it, so there is no
// double-close race between them.
func (c *Client) teardown() {
	c.closeOnce.Do(func() { c.closeErr = c.conn.Close() })
}

// failPending fails every in-flight request with err (the first failure
// wins) and drops any half-assembled batches.
func (c *Client) failPending(err error) {
	c.pendMu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	for id := range c.batchAsm {
		delete(c.batchAsm, id)
	}
	c.pendMu.Unlock()
}

// deliver hands a reply to the request waiting on its ID.
func (c *Client) deliver(reply *replyEnvelope) {
	c.pendMu.Lock()
	ch := c.pending[reply.ID]
	delete(c.pending, reply.ID)
	c.pendMu.Unlock()
	if ch != nil {
		ch <- reply
	}
}

// readLoop dispatches replies to their waiting requests by ID. On
// connection error it fails every pending request with an error wrapping
// serve.ErrConnClosed, so callers can branch on the failure class.
func (c *Client) readLoop() {
	if c.proto == "v3" {
		c.readLoopV3()
		return
	}
	dec := gob.NewDecoder(c.conn)
	for {
		reply := new(replyEnvelope)
		if err := dec.Decode(reply); err != nil {
			c.failPending(fmt.Errorf("edge: recv: %w: %v", serve.ErrConnClosed, err))
			c.teardown()
			return
		}
		c.deliver(reply)
	}
}

func (c *Client) readLoopV3() {
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	for {
		ftype, id, payload, err := readFrameCRC(c.br, buf, c.crc)
		if err == nil {
			err = c.handleFrameV3(ftype, id, payload)
		}
		if err != nil {
			c.failPending(fmt.Errorf("edge: recv: %w: %v", serve.ErrConnClosed, err))
			c.teardown()
			return
		}
	}
}

func (c *Client) handleFrameV3(ftype byte, id uint64, payload []byte) error {
	switch ftype {
	case frameSetupReply:
		rep, err := decodeSetupReply(payload)
		if err != nil {
			return err
		}
		c.deliver(&replyEnvelope{ID: id, Setup: rep})
	case frameComputeReply:
		rep, err := decodeComputeReply(payload)
		if err != nil {
			return err
		}
		c.deliver(&replyEnvelope{ID: id, Compute: rep})
	case frameRekeyReply:
		rep, err := decodeRekeyReply(payload)
		if err != nil {
			return err
		}
		c.deliver(&replyEnvelope{ID: id, Rekey: rep})
	case frameBatchItem:
		idx, item, err := decodeBatchItem(payload)
		if err != nil {
			return err
		}
		c.pendMu.Lock()
		if asm := c.batchAsm[id]; asm != nil && idx >= 0 && idx < len(asm.Items) {
			asm.Items[idx] = item
		}
		c.pendMu.Unlock()
	case frameBatchDone:
		rep, err := decodeBatchDone(payload)
		if err != nil {
			return err
		}
		c.pendMu.Lock()
		asm := c.batchAsm[id]
		delete(c.batchAsm, id)
		c.pendMu.Unlock()
		if asm != nil {
			rep.Items = asm.Items
		}
		c.deliver(&replyEnvelope{ID: id, Batch: rep})
	default:
		return fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, ftype)
	}
	return nil
}

// send registers a fresh request ID, stamps and encodes the envelope, and
// returns the channel its reply will arrive on.
func (c *Client) send(env *envelope) (chan *replyEnvelope, error) {
	id := c.nextID.Add(1)
	env.ID = id
	ch := make(chan *replyEnvelope, 1)
	c.pendMu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.pendMu.Unlock()
		return nil, err
	}
	c.pending[id] = ch
	if c.proto == "v3" && env.Batch != nil {
		// Pre-size the assembly buffer so streamed items have a slot.
		c.batchAsm[id] = &BatchReply{Items: make([]BatchItem, len(env.Batch.Blocks))}
	}
	c.pendMu.Unlock()

	var err error
	if c.proto == "v3" {
		err = c.sendV3(id, env)
	} else {
		c.writeMu.Lock()
		err = c.enc.Encode(env)
		c.writeMu.Unlock()
	}
	if err != nil {
		c.pendMu.Lock()
		delete(c.pending, id)
		delete(c.batchAsm, id)
		c.pendMu.Unlock()
		return nil, fmt.Errorf("edge: send: %w", err)
	}
	return ch, nil
}

func (c *Client) sendV3(id uint64, env *envelope) error {
	switch {
	case env.Setup != nil:
		return c.fw.sendFrame(frameSetup, id, func(b []byte) []byte { return appendSetupRequest(b, env.Setup) })
	case env.Compute != nil:
		return c.fw.sendFrame(frameCompute, id, func(b []byte) []byte { return appendComputeRequest(b, env.Compute) })
	case env.Batch != nil:
		return c.fw.sendFrame(frameBatch, id, func(b []byte) []byte { return appendBatchRequest(b, env.Batch) })
	case env.Rekey != nil:
		return c.fw.sendFrame(frameRekey, id, func(b []byte) []byte { return appendRekeyRequest(b, env.Rekey) })
	}
	return errors.New("edge: empty envelope")
}

func (c *Client) wait(ch chan *replyEnvelope) (*replyEnvelope, error) {
	reply, ok := <-ch
	if !ok {
		c.pendMu.Lock()
		err := c.readErr
		c.pendMu.Unlock()
		if err == nil {
			err = errors.New("edge: connection closed")
		}
		return nil, err
	}
	return reply, nil
}

func (c *Client) roundTrip(env *envelope) (*replyEnvelope, error) {
	ch, err := c.send(env)
	if err != nil {
		return nil, err
	}
	return c.wait(ch)
}

// Close tears down the connection; pending requests fail with an error
// wrapping serve.ErrConnClosed.
func (c *Client) Close() error {
	c.teardown()
	return c.closeErr
}

// Protocol reports the negotiated wire protocol: "v3" or "gob".
func (c *Client) Protocol() string { return c.proto }

// Checksums reports whether per-frame CRC32C trailers were negotiated.
func (c *Client) Checksums() bool { return c.crc }

// Profile reports the security profile the session runs on. On legacy
// paths (gob, pre-profile servers) this is the registry default the
// server pins such sessions to.
func (c *Client) Profile() string { return c.prof.ID }

// Slots returns the per-block capacity.
func (c *Client) Slots() int { return c.cipher.Slots() }

// SessionID returns the session this client registered.
func (c *Client) SessionID() string { return c.sessionID }

// Epoch returns the client's current key epoch.
func (c *Client) Epoch() uint64 {
	c.keyMu.Lock()
	defer c.keyMu.Unlock()
	return c.epoch
}

// mask pads and masks one block under a consistent snapshot of the
// current key material, returning the epoch it was masked under.
func (c *Client) mask(block uint32, data []float64) ([]float64, uint64, error) {
	padded := make([]float64, c.Slots())
	copy(padded, data)
	c.keyMu.Lock()
	key, nonce, epoch := c.key, c.nonce, c.epoch
	c.keyMu.Unlock()
	masked, err := c.cipher.Mask(key, nonce, block, padded)
	if err != nil {
		return nil, 0, fmt.Errorf("edge: mask: %w", err)
	}
	return masked, epoch, nil
}

// decrypt recovers the slot values of an encrypted result.
func (c *Client) decrypt(ct *ckks.Ciphertext) []float64 {
	c.evMu.Lock()
	pt := c.ev.Decrypt(c.sk, ct)
	c.evMu.Unlock()
	return c.encoder.DecodeReal(pt)
}

func (c *Client) noteReply(tx, cmp float64, rekeyNeeded bool, epoch uint64) {
	c.statMu.Lock()
	c.LastTxDelay, c.LastCmpDelay = tx, cmp
	if rekeyNeeded {
		c.rekeyAdvisedEpoch = epoch
	}
	c.statMu.Unlock()
}

// RekeyAdvised reports whether the server has flagged the key byte budget
// as nearly exhausted for the client's current key epoch.
func (c *Client) RekeyAdvised() bool {
	c.statMu.Lock()
	advised := c.rekeyAdvisedEpoch
	c.statMu.Unlock()
	return advised != 0 && advised == c.Epoch()
}

// Pending is one in-flight Compute request.
type Pending struct {
	c     *Client
	ch    chan *replyEnvelope
	n     int
	block uint32
	epoch uint64
}

// Epoch returns the key epoch the request's block was masked under — pass
// it to RekeyIfEpoch when Wait fails with serve.ErrRekeyRequired.
func (p *Pending) Epoch() uint64 { return p.epoch }

// ComputeAsync masks one block and sends it without waiting: multiple
// requests may be in flight on the connection, and the server fans them
// out across its worker pool. block must be unique per call within a
// session and key epoch.
func (c *Client) ComputeAsync(block uint32, data []float64) (*Pending, error) {
	if len(data) > c.Slots() {
		return nil, fmt.Errorf("edge: %d values exceed %d slots", len(data), c.Slots())
	}
	masked, epoch, err := c.mask(block, data)
	if err != nil {
		return nil, err
	}
	ch, err := c.send(&envelope{Compute: &ComputeRequest{
		SessionID: c.sessionID, Block: block, Masked: masked, Epoch: epoch,
	}})
	if err != nil {
		return nil, err
	}
	return &Pending{c: c, ch: ch, n: len(data), block: block, epoch: epoch}, nil
}

// Wait blocks for the reply and decrypts the result. Server-side
// failures carry typed codes: errors.Is against serve.ErrOverloaded,
// serve.ErrRekeyRequired, serve.ErrUnknownSession, ... selects the class.
func (p *Pending) Wait() ([]float64, error) {
	reply, err := p.c.wait(p.ch)
	if err != nil {
		return nil, err
	}
	rep := reply.Compute
	if rep == nil {
		return nil, errors.New("edge: malformed reply")
	}
	p.c.noteReply(rep.ModeledTxDelay, rep.ModeledCmpDelay, rep.RekeyNeeded, p.epoch)
	if rep.Code != serve.CodeOK || rep.Err != "" {
		return nil, replyError(rep.Code, rep.Err)
	}
	if rep.Result == nil {
		return nil, errors.New("edge: malformed reply: missing result")
	}
	out := p.c.decrypt(rep.Result)
	return out[:p.n], nil
}

// Compute runs one full pipeline round: mask data under the symmetric key,
// upload, let the server transcipher + infer, then decrypt the encrypted
// result locally. block must be unique per call within a session and key
// epoch. With a key centre attached (DialQKD), Compute rekeys
// transparently: proactively when the server advises the byte budget is
// nearly spent, and with one retry when the server demands it.
func (c *Client) Compute(block uint32, data []float64) ([]float64, error) {
	for attempt := 0; ; attempt++ {
		p, err := c.ComputeAsync(block, data)
		if err != nil {
			return nil, err
		}
		out, err := p.Wait()
		if err != nil {
			if errors.Is(err, serve.ErrRekeyRequired) && attempt == 0 && c.kc != nil {
				if rkErr := c.RekeyIfEpoch(p.Epoch()); rkErr == nil {
					continue
				}
			}
			return nil, err
		}
		if c.RekeyAdvised() && c.kc != nil {
			// Best-effort proactive rotation; a failure (e.g. depleted
			// pool) surfaces on the next hard budget rejection.
			_ = c.RekeyIfEpoch(p.Epoch())
		}
		return out, nil
	}
}

// ComputeBatch masks blocks start..start+len(data)-1 and uploads them as
// one BatchRequest the server fans out across its pool. On the v3
// protocol the per-item results stream back as each worker finishes (the
// call still returns once the whole batch completes); on gob the reply
// arrives as one buffered message. Results are in input order; items can
// fail independently (e.g. shed with serve.ErrOverloaded), in which case
// their slots are nil and the first failure is returned as a typed error
// alongside the partial results.
func (c *Client) ComputeBatch(start uint32, data [][]float64) ([][]float64, error) {
	n := len(data)
	if n == 0 {
		return nil, nil
	}
	if n > MaxBatch {
		return nil, fmt.Errorf("edge: batch of %d blocks exceeds %d", n, MaxBatch)
	}
	blocks := make([]uint32, n)
	masked := make([][]float64, n)
	var epoch uint64
	for i, d := range data {
		if len(d) > c.Slots() {
			return nil, fmt.Errorf("edge: %d values exceed %d slots", len(d), c.Slots())
		}
		m, e, err := c.mask(start+uint32(i), d)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			epoch = e
		} else if e != epoch {
			return nil, errors.New("edge: key rotated mid-batch; retry")
		}
		blocks[i], masked[i] = start+uint32(i), m
	}
	reply, err := c.roundTrip(&envelope{Batch: &BatchRequest{
		SessionID: c.sessionID, Epoch: epoch, Blocks: blocks, Masked: masked,
	}})
	if err != nil {
		return nil, err
	}
	rep := reply.Batch
	if rep == nil {
		return nil, errors.New("edge: malformed reply")
	}
	if rep.Code != serve.CodeOK {
		return nil, replyError(rep.Code, rep.Err)
	}
	if len(rep.Items) != n {
		return nil, fmt.Errorf("edge: batch reply with %d items, want %d", len(rep.Items), n)
	}
	c.noteReply(rep.ModeledTxDelay, rep.ModeledCmpDelay, rep.RekeyNeeded, epoch)
	out := make([][]float64, n)
	var firstErr error
	for i := range rep.Items {
		item := &rep.Items[i]
		if item.Code != serve.CodeOK || item.Result == nil {
			if firstErr == nil {
				itemErr := replyError(item.Code, item.Err)
				if itemErr == nil {
					itemErr = errors.New("missing result")
				}
				firstErr = fmt.Errorf("edge: batch item %d: %w", i, itemErr)
			}
			continue
		}
		vals := c.decrypt(item.Result)
		out[i] = vals[:len(data[i])]
	}
	return out, firstErr
}

// Rekey withdraws fresh QKD material from the attached key centre and
// rotates the session's transciphering key. Requires DialQKD.
func (c *Client) Rekey() error {
	c.rekeyMu.Lock()
	defer c.rekeyMu.Unlock()
	return c.rekeyLocked()
}

// RekeyIfEpoch rotates the key only if the client is still at the given
// epoch, collapsing the rekey attempts of many concurrently failed
// in-flight requests into a single withdrawal: the first failure rotates,
// the rest see the bumped epoch and simply retry under the new key.
// Requires DialQKD.
func (c *Client) RekeyIfEpoch(epoch uint64) error {
	c.rekeyMu.Lock()
	defer c.rekeyMu.Unlock()
	if c.Epoch() != epoch {
		return nil // another request already rotated past this epoch
	}
	return c.rekeyLocked()
}

// rekeyLocked draws fresh material and rotates; callers hold rekeyMu.
func (c *Client) rekeyLocked() error {
	if c.kc == nil {
		return errors.New("edge: rekey: no key centre attached (use DialQKD)")
	}
	material, err := c.kc.Withdraw(c.sessionID, RekeyWithdrawBytes)
	if err != nil {
		return fmt.Errorf("edge: rekey withdraw: %w", err)
	}
	return c.rekeyWith(material)
}

// RekeyWith rotates the session's transciphering key using explicit fresh
// QKD material: the new key is derived, HE-encrypted and installed on the
// server, which bumps the session's key epoch and resets its byte budget.
// Requests already in flight under the old epoch are rejected by the
// server with serve.ErrRekeyRequired rather than mis-transciphered.
func (c *Client) RekeyWith(qkdKey []byte) error {
	c.rekeyMu.Lock()
	defer c.rekeyMu.Unlock()
	return c.rekeyWith(qkdKey)
}

func (c *Client) rekeyWith(qkdKey []byte) error {
	key, err := c.cipher.DeriveKey(qkdKey)
	if err != nil {
		return fmt.Errorf("edge: rekey derive: %w", err)
	}
	c.keyMu.Lock()
	nextEpoch := c.epoch + 1
	c.keyMu.Unlock()
	nonce := nonceFor(c.sessionID, nextEpoch)
	c.evMu.Lock()
	encKey, err := c.cipher.EncryptKey(c.ev, c.pk, key)
	c.evMu.Unlock()
	if err != nil {
		return fmt.Errorf("edge: rekey encrypt: %w", err)
	}
	reply, err := c.roundTrip(&envelope{Rekey: &RekeyRequest{
		SessionID: c.sessionID, EncKey: encKey, Nonce: nonce,
	}})
	if err != nil {
		return err
	}
	rep := reply.Rekey
	if rep == nil {
		return errors.New("edge: malformed reply")
	}
	if !rep.OK {
		return fmt.Errorf("edge: rekey rejected: %w", replyError(rep.Code, rep.Err))
	}
	c.keyMu.Lock()
	c.key, c.nonce, c.epoch = key, nonce, rep.Epoch
	c.keyMu.Unlock()
	c.statMu.Lock()
	c.rekeyAdvisedEpoch = 0
	c.statMu.Unlock()
	return nil
}
