package edge

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"

	"quhe/internal/he/ckks"
	"quhe/internal/transcipher"
)

// Client is a QuHE edge client node: it owns the HE secret key, masks data
// under the QKD-derived symmetric key, and decrypts the server's encrypted
// results. One Client drives one TCP connection; it is not safe for
// concurrent use (one request in flight at a time).
type Client struct {
	sessionID string
	conn      net.Conn
	enc       *gob.Encoder
	dec       *gob.Decoder

	ctx     *ckks.Context
	cipher  *transcipher.Cipher
	encoder *ckks.Encoder
	ev      *ckks.Evaluator
	sk      *ckks.SecretKey
	key     []float64
	nonce   []byte

	// LastTxDelay and LastCmpDelay echo the server's modeled costs of the
	// most recent Compute call.
	LastTxDelay  float64
	LastCmpDelay float64
}

// Dial connects to an edge server, generates the client's HE keys, derives
// the transciphering key from qkdKey (e.g. material withdrawn from the
// qkd.KeyCenter), and registers the session.
func Dial(addr, sessionID string, qkdKey []byte, seed int64) (*Client, error) {
	if sessionID == "" {
		return nil, errors.New("edge: empty session id")
	}
	if seed == 0 {
		seed = 1
	}
	ctx, err := ckks.NewContext(DefaultParams())
	if err != nil {
		return nil, fmt.Errorf("edge: context: %w", err)
	}
	cipher, err := transcipher.New(ctx, KeyLen)
	if err != nil {
		return nil, fmt.Errorf("edge: cipher: %w", err)
	}
	kg := ckks.NewKeyGenerator(ctx, seed)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	ev := ckks.NewEvaluator(ctx, seed+1)

	key, err := cipher.DeriveKey(qkdKey)
	if err != nil {
		return nil, fmt.Errorf("edge: derive key: %w", err)
	}
	encKey, err := cipher.EncryptKey(ev, pk, key)
	if err != nil {
		return nil, fmt.Errorf("edge: encrypt key: %w", err)
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("edge: dial: %w", err)
	}
	c := &Client{
		sessionID: sessionID,
		conn:      conn,
		enc:       gob.NewEncoder(conn),
		dec:       gob.NewDecoder(conn),
		ctx:       ctx,
		cipher:    cipher,
		encoder:   ckks.NewEncoder(ctx),
		ev:        ev,
		sk:        sk,
		key:       key,
		nonce:     []byte("edge:" + sessionID),
	}
	req := envelope{Setup: &SetupRequest{
		SessionID: sessionID,
		LogN:      ctx.Params.LogN,
		Depth:     ctx.Params.Depth,
		PK:        pk,
		RLK:       rlk,
		EncKey:    encKey,
		Nonce:     c.nonce,
	}}
	if err := c.enc.Encode(&req); err != nil {
		conn.Close()
		return nil, fmt.Errorf("edge: setup send: %w", err)
	}
	var reply replyEnvelope
	if err := c.dec.Decode(&reply); err != nil {
		conn.Close()
		return nil, fmt.Errorf("edge: setup recv: %w", err)
	}
	if reply.Setup == nil || !reply.Setup.OK {
		conn.Close()
		msg := "missing reply"
		if reply.Setup != nil {
			msg = reply.Setup.Err
		}
		return nil, fmt.Errorf("edge: setup rejected: %s", msg)
	}
	return c, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Slots returns the per-block capacity.
func (c *Client) Slots() int { return c.cipher.Slots() }

// Compute runs one full pipeline round: mask data under the symmetric key,
// upload, let the server transcipher + infer, then decrypt the encrypted
// result locally. block must be unique per call within a session.
func (c *Client) Compute(block uint32, data []float64) ([]float64, error) {
	if len(data) > c.Slots() {
		return nil, fmt.Errorf("edge: %d values exceed %d slots", len(data), c.Slots())
	}
	padded := make([]float64, c.Slots())
	copy(padded, data)
	masked, err := c.cipher.Mask(c.key, c.nonce, block, padded)
	if err != nil {
		return nil, fmt.Errorf("edge: mask: %w", err)
	}
	req := envelope{Compute: &ComputeRequest{SessionID: c.sessionID, Block: block, Masked: masked}}
	if err := c.enc.Encode(&req); err != nil {
		return nil, fmt.Errorf("edge: send: %w", err)
	}
	var reply replyEnvelope
	if err := c.dec.Decode(&reply); err != nil {
		return nil, fmt.Errorf("edge: recv: %w", err)
	}
	if reply.Compute == nil {
		return nil, errors.New("edge: malformed reply")
	}
	if reply.Compute.Err != "" {
		return nil, fmt.Errorf("edge: server: %s", reply.Compute.Err)
	}
	c.LastTxDelay = reply.Compute.ModeledTxDelay
	c.LastCmpDelay = reply.Compute.ModeledCmpDelay

	pt := c.ev.Decrypt(c.sk, reply.Compute.Result)
	out := c.encoder.DecodeReal(pt)
	return out[:len(data)], nil
}
