package edge

import (
	"sync"
	"time"

	"quhe/internal/he/ring"
	"quhe/internal/obs"
	"quhe/internal/serve"
)

// Serving-path stage names: the label domain of quhe_stage_seconds and
// the span names of per-block traces. Fixed at build time per the obs
// cardinality rules.
const (
	stageDecode    = "decode"
	stageQueueWait = "queue_wait"
	stageEval      = "eval"
	stageMatVec    = "matvec"
	stageEncode    = "encode"
	stageWrite     = "write"
)

// serverObs is the edge server's instrument set: every counter, gauge
// and histogram the serving path touches, resolved once at construction
// so hot-path updates are pure atomics on held pointers. A nil
// *serverObs (ServerConfig.DisableObs) turns every instrumentation site
// into a nil-check and branch.
type serverObs struct {
	reg    *obs.Registry
	tracer *obs.Tracer

	framesIn, framesOut *obs.Counter
	bytesIn, bytesOut   *obs.Counter
	checksumFails       *obs.Counter
	connsV3, connsGob   *obs.Gauge
	rekeys              *obs.Counter
	shedQueueFull       *obs.Counter

	// Fault-tolerance instruments (PR 8): session resume grants/denials,
	// resume-window expiries, idle-deadline reclaims and drain invocations.
	resumes       *obs.Counter
	resumeRejects *obs.Counter
	resumeExpired *obs.Counter
	idleTimeouts  *obs.Counter
	drains        *obs.Counter

	queueWait *obs.Histogram
	stages    [6]*obs.Histogram // indexed by stage constants below

	// codeCounters maps serve.Code → its prebuilt counter; evalHists maps
	// profile ID → its latency histogram. Both domains are small and
	// bounded (codes at build time, profiles by the registry), per the
	// obs label-cardinality rules.
	codeMu       sync.Mutex
	codeCounters map[serve.Code]*obs.Counter
	evalMu       sync.Mutex
	evalHists    map[string]*obs.Histogram

	// SLO plane: availability is fed one event per computed block (good =
	// CodeOK), per-profile latency one event per eval (good = under the
	// target). Trackers register their quhe_slo_* series on first use;
	// the profile domain is bounded by the registry, so the slo label
	// stays within the obs cardinality rules.
	slos        *obs.SLOSet
	availSLO    *obs.SLOTracker
	latencySLOs map[string]*obs.SLOTracker // guarded by evalMu
}

// sloObjective is the default objective for the built-in server SLOs
// (99% of blocks served OK; 99% of evals under the latency target).
const sloObjective = 0.99

// sloLatencyTarget is the per-eval latency threshold the latency SLOs
// count against. CKKS evals at the default profile run well under this
// on commodity hardware; sustained breaches mean queueing or an
// oversized profile, which is exactly what the burn rate should show.
const sloLatencyTarget = 250 * time.Millisecond

const (
	stageIdxDecode = iota
	stageIdxQueueWait
	stageIdxEval
	stageIdxMatVec
	stageIdxEncode
	stageIdxWrite
)

func newServerObs(reg *obs.Registry, s *Server) *serverObs {
	m := &serverObs{
		reg:           reg,
		tracer:        obs.NewTracer(0, 0),
		framesIn:      reg.Counter("quhe_wire_frames_total", "v3 frames by direction", "dir", "in"),
		framesOut:     reg.Counter("quhe_wire_frames_total", "", "dir", "out"),
		bytesIn:       reg.Counter("quhe_wire_bytes_total", "v3 wire bytes by direction", "dir", "in"),
		bytesOut:      reg.Counter("quhe_wire_bytes_total", "", "dir", "out"),
		checksumFails: reg.Counter("quhe_wire_checksum_failures_total", "frames rejected by CRC32C trailer mismatch"),
		connsV3:       reg.Gauge("quhe_edge_conns", "live connections by protocol generation", "proto", "v3"),
		connsGob:      reg.Gauge("quhe_edge_conns", "", "proto", "gob"),
		rekeys:        reg.Counter("quhe_edge_rekeys_total", "successful session rekeys"),
		shedQueueFull: reg.Counter("quhe_serve_shed_total", "requests shed by reason", "reason", "queue_full"),
		resumes:       reg.Counter("quhe_resumes_total", "sessions re-attached by the resume handshake"),
		resumeRejects: reg.Counter("quhe_edge_resume_rejects_total", "resume attempts denied (bad proof, epoch/profile drift, unknown session)"),
		resumeExpired: reg.Counter("quhe_edge_resume_window_expired_total", "detached sessions reaped after the resume window"),
		idleTimeouts:  reg.Counter("quhe_edge_idle_timeouts_total", "connections reclaimed by the idle read deadline"),
		drains:        reg.Counter("quhe_edge_drains_total", "graceful drains initiated"),
		queueWait:     reg.Histogram("quhe_serve_queue_wait_seconds", "scheduler queue wait per job"),
		codeCounters:  make(map[serve.Code]*obs.Counter),
		evalHists:     make(map[string]*obs.Histogram),
		latencySLOs:   make(map[string]*obs.SLOTracker),
	}
	m.slos = obs.NewSLOSet(reg)
	m.availSLO = m.slos.Add("availability", sloObjective)
	for i, stage := range []string{stageDecode, stageQueueWait, stageEval, stageMatVec, stageEncode, stageWrite} {
		m.stages[i] = reg.Histogram("quhe_stage_seconds", "per-stage serving latency", "stage", stage)
	}
	reg.GaugeFunc("quhe_edge_sessions", "resident sessions", func() float64 {
		return float64(s.store.Len())
	})
	reg.GaugeFunc("quhe_resume_window_sessions", "sessions detached inside the resume window", func() float64 {
		return float64(s.store.Detached())
	})
	reg.CounterFunc("quhe_edge_evictions_total", "sessions displaced by the session cap", func() float64 {
		return float64(s.store.Evictions())
	})
	reg.GaugeFunc("quhe_serve_queue_depth", "jobs waiting in the scheduler queue", func() float64 {
		return float64(s.sched.QueueDepth())
	})
	reg.GaugeFunc("quhe_serve_queue_capacity", "live scheduler depth bound", func() float64 {
		return float64(s.sched.Capacity())
	})
	reg.CounterFunc("quhe_serve_scheduler_sheds_total", "submissions rejected by the scheduler", func() float64 {
		return float64(s.sched.Sheds())
	})
	reg.CounterFunc("quhe_ring_inline_degradations_total", "NTT fan-out tasks run inline on a saturated worker pool", func() float64 {
		return float64(ring.InlineDegradations())
	})
	reg.CounterFunc("quhe_trace_dropped_total", "block traces dropped by the tracer session cap", func() float64 {
		return float64(m.tracer.Dropped())
	})
	s.sched.OnQueueWait(func(d time.Duration) { m.queueWait.Observe(d.Seconds()) })
	return m
}

// registerPoolGauges publishes one profile pool's size/utilization the
// moment the PoolSet factory builds it — profiles without traffic cost
// no series, matching the lazy pool build.
func (m *serverObs) registerPoolGauges(profileID string, p *serve.EvalPool) {
	m.reg.GaugeFunc("quhe_eval_pool_size", "evaluator pool capacity per profile",
		func() float64 { return float64(p.Size()) }, "profile", profileID)
	m.reg.GaugeFunc("quhe_eval_pool_in_use", "evaluators checked out per profile",
		func() float64 { return float64(p.InUse()) }, "profile", profileID)
	m.reg.GaugeFunc("quhe_eval_pool_built", "evaluators materialized per profile",
		func() float64 { return float64(p.Built()) }, "profile", profileID)
}

// codeCounter returns the prebuilt counter for a compute outcome code.
func (m *serverObs) codeCounter(code serve.Code) *obs.Counter {
	m.codeMu.Lock()
	c := m.codeCounters[code]
	if c == nil {
		c = m.reg.Counter("quhe_serve_compute_total", "compute outcomes by code", "code", code.String())
		m.codeCounters[code] = c
	}
	m.codeMu.Unlock()
	return c
}

// evalHist returns the per-profile eval latency histogram.
func (m *serverObs) evalHist(profileID string) *obs.Histogram {
	m.evalMu.Lock()
	h := m.evalHists[profileID]
	if h == nil {
		h = m.reg.Histogram("quhe_eval_seconds", "transcipher-and-infer latency per profile", "profile", profileID)
		m.evalHists[profileID] = h
	}
	m.evalMu.Unlock()
	return h
}

// observeOutcome feeds one computed block's outcome into the
// availability SLO.
func (m *serverObs) observeOutcome(code serve.Code) {
	m.availSLO.Observe(code == serve.CodeOK)
}

// observeEval feeds one eval's latency into the profile's histogram and
// its latency SLO (lazily created, like the histogram).
func (m *serverObs) observeEval(profileID string, d time.Duration) {
	m.evalHist(profileID).Observe(d.Seconds())
	m.evalMu.Lock()
	t := m.latencySLOs[profileID]
	if t == nil {
		t = m.slos.Add("latency-"+profileID, sloObjective)
		m.latencySLOs[profileID] = t
	}
	m.evalMu.Unlock()
	t.Observe(d <= sloLatencyTarget)
}

// sloSnapshot renders the SLO plane for /debug/slo.
func (m *serverObs) sloSnapshot() any { return m.slos.Snapshot() }

// observeSpan feeds one stage span into its latency histogram.
func (m *serverObs) observeSpan(idx int, d time.Duration) {
	m.stages[idx].Observe(d.Seconds())
}

// blockTrace is the in-flight trace of one v3 compute request, built
// stage by stage across the decode loop, the eval worker and the frame
// writer, then recorded once the reply frame reached the socket. Spans
// also feed the quhe_stage_seconds histograms, so the aggregate and the
// per-request views cannot drift apart.
type blockTrace struct {
	met *serverObs
	bt  obs.BlockTrace
}

// newBlockTrace starts a trace at the decode timestamp (the earliest
// point the server saw the request). Returns nil when tracing is off —
// every method below is nil-safe.
func (m *serverObs) newBlockTrace(session string, block uint32, reqID uint64, start time.Time) *blockTrace {
	if m == nil {
		return nil
	}
	return &blockTrace{met: m, bt: obs.BlockTrace{
		Session: session, Block: block, ReqID: reqID, Start: start,
		Spans: make([]obs.Span, 0, 5),
	}}
}

// adopt re-parents the trace under a client-supplied wire context: same
// trace ID, the server's block span parented to the client's submit
// span. An invalid or unsampled context leaves the trace standalone,
// exactly as pre-trace peers see it.
func (t *blockTrace) adopt(tc obs.TraceContext) {
	if t == nil || !tc.Valid() || !tc.Sampled {
		return
	}
	t.bt.TraceID, t.bt.Parent = tc.TraceID, tc.Parent
}

// span appends one stage span and feeds the matching histogram.
func (t *blockTrace) span(idx int, stage string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.bt.Spans = append(t.bt.Spans, obs.Span{Stage: stage, Start: start, Dur: d})
	t.met.observeSpan(idx, d)
}

// finish stamps the end-to-end total and hands the trace to the tracer
// (which takes ownership of the spans slice).
func (t *blockTrace) finish() {
	if t == nil {
		return
	}
	t.bt.Total = time.Since(t.bt.Start)
	t.met.tracer.Record(t.bt)
}
