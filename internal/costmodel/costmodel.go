// Package costmodel implements the delay, energy and security cost functions
// of the QuHE paper: the fitted CKKS cycle/security models (Eqs. 29–31), the
// client encryption costs (7)–(8), the server computation costs (13)–(14),
// the system totals (15)–(16) and the weighted security utility (9).
//
// λ (the CKKS polynomial degree) is carried as float64 throughout because
// the fitted models are continuous functions evaluated at the discrete set
// {2^15, 2^16, 2^17}.
package costmodel

import (
	"fmt"
	"math"
)

// Paper-fitted model coefficients (§VI-A). They were obtained by the authors
// by curve-fitting CKKS microbenchmarks and LWE-estimator output from [15];
// internal/he/lwe's estimator + fitter regenerates models of the same shape.
const (
	// EvalCoeff appears in f_eval(λ) = EvalCoeff·(λ + EvalShift)².
	EvalCoeff = 0.012
	// EvalShift is the additive shift inside the quadratic of Eq. (29).
	EvalShift = 64500
	// MSLSlope and MSLIntercept define f_msl(λ) = MSLSlope·λ + MSLIntercept
	// (Eq. 30), in security bits.
	MSLSlope     = 0.002
	MSLIntercept = 1.4789
	// CmpSlope and CmpIntercept define f_cmp(λ) = CmpSlope·λ + CmpIntercept
	// (Eq. 31), in CPU cycles per sample.
	CmpSlope     = 8917959.4
	CmpIntercept = -51292440000
)

// EvalCycles returns f_eval(λ) of Eq. (29): CPU cycles per sample for the
// server-side transciphering (homomorphic symmetric-decryption) step.
func EvalCycles(lambda float64) float64 {
	s := lambda + EvalShift
	return EvalCoeff * s * s
}

// MinSecurityLevel returns f_msl(λ) of Eq. (30): the minimum security level
// in bits across the uSVP, BDD and hybrid-dual attacks for the paper's fixed
// coefficient modulus, as fitted from the LWE estimator.
func MinSecurityLevel(lambda float64) float64 {
	return MSLSlope*lambda + MSLIntercept
}

// CmpCycles returns f_cmp(λ) of Eq. (31): CPU cycles per sample for the
// encrypted-prediction workload. The linear fit is only meaningful on the
// paper's domain λ ≥ 2^15; it is clamped at zero below the fit's root so the
// cost can never go negative.
func CmpCycles(lambda float64) float64 {
	c := CmpSlope*lambda + CmpIntercept
	if c < 0 {
		return 0
	}
	return c
}

// TotalServerCycles returns (f_cmp(λ)+f_eval(λ))·d_cmp/̺: the total CPU
// cycles the server spends on one client's workload of dCmpTokens tokens at
// tokensPerSample tokens per sample (the numerator of Eq. 13).
func TotalServerCycles(lambda, dCmpTokens, tokensPerSample float64) float64 {
	if tokensPerSample <= 0 {
		return math.Inf(1)
	}
	return (CmpCycles(lambda) + EvalCycles(lambda)) * dCmpTokens / tokensPerSample
}

// EncryptionDelay returns T_enc of Eq. (7): f_se/f_c seconds, where f_se is
// the client's symmetric-encryption CPU cycles and f_c its clock in Hz.
func EncryptionDelay(seCycles, clientHz float64) float64 {
	if clientHz <= 0 {
		return math.Inf(1)
	}
	return seCycles / clientHz
}

// EncryptionEnergy returns E_enc of Eq. (8): κ_c·f_se·f_c² joules.
func EncryptionEnergy(kappaClient, seCycles, clientHz float64) float64 {
	return kappaClient * seCycles * clientHz * clientHz
}

// ComputeDelay returns T_cmp of Eq. (13): server cycles divided by the
// server CPU share f_s allocated to the client.
func ComputeDelay(lambda, dCmpTokens, tokensPerSample, serverHz float64) float64 {
	if serverHz <= 0 {
		return math.Inf(1)
	}
	return TotalServerCycles(lambda, dCmpTokens, tokensPerSample) / serverHz
}

// ComputeEnergy returns E_cmp of Eq. (14): κ_s·cycles·f_s² joules.
func ComputeEnergy(kappaServer, lambda, dCmpTokens, tokensPerSample, serverHz float64) float64 {
	return kappaServer * TotalServerCycles(lambda, dCmpTokens, tokensPerSample) * serverHz * serverHz
}

// WeightedSecurity returns U_msl of Eq. (9): Σ ς_n·f_msl(λ_n), the
// importance-weighted sum of per-client minimum security levels.
func WeightedSecurity(weights, lambdas []float64) (float64, error) {
	if len(weights) != len(lambdas) {
		return 0, fmt.Errorf("costmodel: %d weights for %d lambdas", len(weights), len(lambdas))
	}
	s := 0.0
	for i := range weights {
		s += weights[i] * MinSecurityLevel(lambdas[i])
	}
	return s, nil
}

// TotalDelay returns T_total of Eq. (15): the maximum over clients of
// (encryption + transmission + computation) delay.
func TotalDelay(perClient []float64) float64 {
	m := math.Inf(-1)
	for _, d := range perClient {
		if d > m {
			m = d
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// TotalEnergy returns E_total of Eq. (16): the sum over clients of
// (encryption + transmission + computation) energy.
func TotalEnergy(perClient []float64) float64 {
	s := 0.0
	for _, e := range perClient {
		s += e
	}
	return s
}
