package costmodel

import (
	"math"
	"testing"
)

const (
	lambda15 = 32768.0
	lambda16 = 65536.0
	lambda17 = 131072.0
)

func TestEvalCycles(t *testing.T) {
	// f_eval(2^15) = 0.012·(32768+64500)² — hand-computed.
	want := 0.012 * 97268 * 97268
	if got := EvalCycles(lambda15); math.Abs(got-want) > 1 {
		t.Errorf("EvalCycles(2^15) = %v, want %v", got, want)
	}
	// Strictly increasing on the domain.
	if !(EvalCycles(lambda15) < EvalCycles(lambda16) && EvalCycles(lambda16) < EvalCycles(lambda17)) {
		t.Error("EvalCycles not increasing over λ set")
	}
}

func TestMinSecurityLevel(t *testing.T) {
	tests := []struct {
		lambda, want float64
	}{
		{lambda15, 0.002*32768 + 1.4789},  // 67.0149
		{lambda16, 0.002*65536 + 1.4789},  // 132.5509
		{lambda17, 0.002*131072 + 1.4789}, // 263.6229
	}
	for _, tt := range tests {
		if got := MinSecurityLevel(tt.lambda); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("MinSecurityLevel(%v) = %v, want %v", tt.lambda, got, tt.want)
		}
	}
}

func TestCmpCycles(t *testing.T) {
	want := 8917959.4*lambda15 - 51292440000
	if got := CmpCycles(lambda15); math.Abs(got-want) > 1 {
		t.Errorf("CmpCycles(2^15) = %v, want %v", got, want)
	}
	if want <= 0 {
		t.Fatalf("paper model should be positive at 2^15, got %v", want)
	}
	// Clamped at zero below the fit's root (outside the model's domain).
	if got := CmpCycles(1000); got != 0 {
		t.Errorf("CmpCycles(1000) = %v, want 0 (clamped)", got)
	}
}

func TestTotalServerCycles(t *testing.T) {
	// 160 tokens at 10 tokens/sample = 16 samples.
	got := TotalServerCycles(lambda15, 160, 10)
	want := (CmpCycles(lambda15) + EvalCycles(lambda15)) * 16
	if math.Abs(got-want) > 1 {
		t.Errorf("TotalServerCycles = %v, want %v", got, want)
	}
	if !math.IsInf(TotalServerCycles(lambda15, 160, 0), 1) {
		t.Error("zero tokens/sample should give +Inf")
	}
}

func TestEncryptionDelayEnergy(t *testing.T) {
	// Paper values: f_se = 1e6 cycles, f_c = 3 GHz.
	if got := EncryptionDelay(1e6, 3e9); math.Abs(got-1e6/3e9) > 1e-18 {
		t.Errorf("EncryptionDelay = %v", got)
	}
	if !math.IsInf(EncryptionDelay(1e6, 0), 1) {
		t.Error("zero clock should give +Inf delay")
	}
	// E_enc = κ·f_se·f_c² = 1e-28·1e6·9e18 = 9e-4 J.
	if got := EncryptionEnergy(1e-28, 1e6, 3e9); math.Abs(got-9e-4) > 1e-15 {
		t.Errorf("EncryptionEnergy = %v, want 9e-4", got)
	}
}

func TestComputeDelayEnergy(t *testing.T) {
	cycles := TotalServerCycles(lambda15, 160, 10)
	fs := 20e9 / 6
	if got := ComputeDelay(lambda15, 160, 10, fs); math.Abs(got-cycles/fs) > 1e-9 {
		t.Errorf("ComputeDelay = %v, want %v", got, cycles/fs)
	}
	if !math.IsInf(ComputeDelay(lambda15, 160, 10, 0), 1) {
		t.Error("zero server share should give +Inf delay")
	}
	wantE := 1e-28 * cycles * fs * fs
	if got := ComputeEnergy(1e-28, lambda15, 160, 10, fs); math.Abs(got-wantE)/wantE > 1e-12 {
		t.Errorf("ComputeEnergy = %v, want %v", got, wantE)
	}
}

func TestWeightedSecurity(t *testing.T) {
	// Paper weights with all clients at λ = 2^15.
	weights := []float64{0.1, 0.1, 0.1, 0.2, 0.2, 0.3}
	lambdas := []float64{lambda15, lambda15, lambda15, lambda15, lambda15, lambda15}
	got, err := WeightedSecurity(weights, lambdas)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 * MinSecurityLevel(lambda15) // weights sum to 1
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("WeightedSecurity = %v, want %v", got, want)
	}
	if _, err := WeightedSecurity(weights[:2], lambdas); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestWeightedSecurityHeterogeneous(t *testing.T) {
	weights := []float64{0.5, 0.5}
	lambdas := []float64{lambda15, lambda17}
	got, err := WeightedSecurity(weights, lambdas)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*MinSecurityLevel(lambda15) + 0.5*MinSecurityLevel(lambda17)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("WeightedSecurity = %v, want %v", got, want)
	}
}

func TestTotals(t *testing.T) {
	delays := []float64{1, 5, 3}
	if got := TotalDelay(delays); got != 5 {
		t.Errorf("TotalDelay = %v, want 5", got)
	}
	if got := TotalDelay(nil); got != 0 {
		t.Errorf("TotalDelay(nil) = %v, want 0", got)
	}
	if got := TotalEnergy(delays); got != 9 {
		t.Errorf("TotalEnergy = %v, want 9", got)
	}
	if got := TotalEnergy(nil); got != 0 {
		t.Errorf("TotalEnergy(nil) = %v, want 0", got)
	}
}

// TestSecurityCostTradeoff documents the Stage-2 trade-off: raising λ adds
// security (U_msl ↑) but also server cycles (cost ↑) — both must be strictly
// monotone in λ for branch & bound's bounds to make sense.
func TestSecurityCostTradeoff(t *testing.T) {
	lams := []float64{lambda15, lambda16, lambda17}
	for i := 1; i < len(lams); i++ {
		if MinSecurityLevel(lams[i]) <= MinSecurityLevel(lams[i-1]) {
			t.Error("security not increasing in λ")
		}
		if TotalServerCycles(lams[i], 160, 10) <= TotalServerCycles(lams[i-1], 160, 10) {
			t.Error("server cycles not increasing in λ")
		}
	}
}
