// Package optimize is a self-contained convex/heuristic optimization toolkit
// built only on the standard library. It stands in for the "common convex
// tools" (Matlab CVX) the QuHE paper relies on:
//
//   - MinimizeBarrier: log-barrier damped-Newton interior-point method for
//     smooth convex programs with inequality constraints (Stages 1 and 3).
//   - MinimizeProjGrad: projected gradient descent over box constraints.
//   - GradientDescent, Anneal, RandomSearch: the Stage-1 baselines from the
//     paper (§VI-B).
//   - MaximizeBnB / MaximizeExhaustive: branch & bound over small discrete
//     assignment spaces (Stage 2, Algorithm 2).
//
// Problems are expressed as plain closures over []float64; derivatives are
// obtained by central finite differences, which is accurate and cheap at the
// dimensions this repository works at (≤ ~30 variables).
package optimize

import "math"

// Func is a scalar-valued objective or constraint function. Implementations
// may return +Inf to signal an infeasible or undefined point.
type Func func(x []float64) float64

// derivStep returns the central-difference step for coordinate value v.
func derivStep(v float64) float64 {
	// cbrt(machine eps) scaling balances truncation vs rounding error.
	const base = 6.055454452393343e-06 // cbrt(2^-52)
	return base * math.Max(1, math.Abs(v))
}

// Gradient estimates ∇f(x) by central differences. x is not modified.
func Gradient(f Func, x []float64) []float64 {
	g := make([]float64, len(x))
	xx := make([]float64, len(x))
	copy(xx, x)
	for i := range x {
		h := derivStep(x[i])
		xx[i] = x[i] + h
		fp := f(xx)
		xx[i] = x[i] - h
		fm := f(xx)
		xx[i] = x[i]
		g[i] = (fp - fm) / (2 * h)
	}
	return g
}

// Hessian estimates ∇²f(x) by central second differences. The result is
// symmetrized. x is not modified.
func Hessian(f Func, x []float64) [][]float64 {
	n := len(x)
	h := make([]float64, n)
	for i := range x {
		// Slightly larger step for second derivatives (eps^(1/4) scaling).
		h[i] = 1.2207e-4 * math.Max(1, math.Abs(x[i]))
	}
	xx := make([]float64, n)
	copy(xx, x)
	f0 := f(xx)
	hess := make([][]float64, n)
	for i := range hess {
		hess[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		// Diagonal: (f(x+h) - 2f(x) + f(x-h)) / h².
		xx[i] = x[i] + h[i]
		fp := f(xx)
		xx[i] = x[i] - h[i]
		fm := f(xx)
		xx[i] = x[i]
		hess[i][i] = (fp - 2*f0 + fm) / (h[i] * h[i])
		for j := i + 1; j < n; j++ {
			// Off-diagonal: four-point formula.
			xx[i], xx[j] = x[i]+h[i], x[j]+h[j]
			fpp := f(xx)
			xx[i], xx[j] = x[i]+h[i], x[j]-h[j]
			fpm := f(xx)
			xx[i], xx[j] = x[i]-h[i], x[j]+h[j]
			fmp := f(xx)
			xx[i], xx[j] = x[i]-h[i], x[j]-h[j]
			fmm := f(xx)
			xx[i], xx[j] = x[i], x[j]
			v := (fpp - fpm - fmp + fmm) / (4 * h[i] * h[j])
			hess[i][j] = v
			hess[j][i] = v
		}
	}
	return hess
}
