package optimize

import (
	"errors"
	"fmt"

	"quhe/internal/mathutil"
)

// Box describes per-coordinate bounds Lo[i] ≤ x[i] ≤ Hi[i].
type Box struct {
	Lo, Hi []float64
}

// Validate checks that the box is well formed for dimension n.
func (b Box) Validate(n int) error {
	if len(b.Lo) != n || len(b.Hi) != n {
		return fmt.Errorf("optimize: box dimension %d/%d, want %d: %w",
			len(b.Lo), len(b.Hi), n, mathutil.ErrDimensionMismatch)
	}
	for i := range b.Lo {
		if b.Lo[i] > b.Hi[i] {
			return fmt.Errorf("optimize: box bound %d inverted: [%g, %g]", i, b.Lo[i], b.Hi[i])
		}
	}
	return nil
}

// Project clamps x into the box in place.
func (b Box) Project(x []float64) {
	mathutil.ClampVecInPlace(x, b.Lo, b.Hi)
}

// Contains reports whether x lies inside the box (inclusive).
func (b Box) Contains(x []float64) bool {
	if len(x) != len(b.Lo) {
		return false
	}
	for i := range x {
		if x[i] < b.Lo[i] || x[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// PGOptions configures MinimizeProjGrad.
type PGOptions struct {
	// MaxIter bounds the number of projected-gradient steps. Default 500.
	MaxIter int
	// Tol stops when the projected step moves x by less than Tol in
	// infinity norm. Default 1e-9.
	Tol float64
}

func (o PGOptions) defaults() PGOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 500
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	return o
}

// PGResult reports the outcome of MinimizeProjGrad.
type PGResult struct {
	X         []float64
	Value     float64
	Iters     int
	Converged bool
	Values    []float64 // objective after each iteration
}

// MinimizeProjGrad minimizes f over the box by projected gradient descent
// with backtracking. For convex f over a box this converges to the global
// minimizer; it serves both as a solver in its own right and as the ablation
// comparator for the barrier method.
func MinimizeProjGrad(f Func, box Box, x0 []float64, opts PGOptions) (PGResult, error) {
	o := opts.defaults()
	var res PGResult
	if err := box.Validate(len(x0)); err != nil {
		return res, err
	}
	x := mathutil.Clone(x0)
	box.Project(x)
	fx := f(x)
	trial := make([]float64, len(x))
	step := 1.0
	for iter := 0; iter < o.MaxIter; iter++ {
		res.Iters++
		g := Gradient(f, x)
		if !mathutil.AllFinite(g) {
			return res, errors.New("optimize: non-finite gradient in projected gradient descent")
		}
		// Backtrack on the projected step until sufficient decrease.
		t := step
		moved := 0.0
		for ; t > 1e-18; t *= 0.5 {
			for i := range x {
				trial[i] = mathutil.Clamp(x[i]-t*g[i], box.Lo[i], box.Hi[i])
			}
			ft := f(trial)
			if ft < fx {
				moved = mathutil.NormInf(mathutil.Sub(trial, x))
				copy(x, trial)
				fx = ft
				break
			}
		}
		res.Values = append(res.Values, fx)
		if moved < o.Tol {
			res.Converged = true
			break
		}
		// Allow the step to grow back so progress is not permanently slow.
		step = mathutil.Clamp(t*4, 1e-12, 1e6)
	}
	res.X = x
	res.Value = fx
	return res, nil
}
