package optimize

import (
	"math"
	"testing"

	"quhe/internal/mathutil"
)

func bowl(x []float64) float64 {
	return (x[0]-1)*(x[0]-1) + (x[1]+2)*(x[1]+2)
}

func unitBox2() Box {
	return Box{Lo: []float64{-5, -5}, Hi: []float64{5, 5}}
}

func TestProjGradInterior(t *testing.T) {
	res, err := MinimizeProjGrad(bowl, unitBox2(), []float64{4, 4}, PGOptions{})
	if err != nil {
		t.Fatalf("MinimizeProjGrad: %v", err)
	}
	if !mathutil.VecApproxEqual(res.X, []float64{1, -2}, 1e-4) {
		t.Errorf("X = %v, want [1 -2]", res.X)
	}
	if !res.Converged {
		t.Error("did not converge")
	}
}

func TestProjGradBindingBox(t *testing.T) {
	// Optimum (1,-2) is outside the box [0,0.5]² → solution clamps.
	box := Box{Lo: []float64{0, 0}, Hi: []float64{0.5, 0.5}}
	res, err := MinimizeProjGrad(bowl, box, []float64{0.2, 0.2}, PGOptions{})
	if err != nil {
		t.Fatalf("MinimizeProjGrad: %v", err)
	}
	if !mathutil.VecApproxEqual(res.X, []float64{0.5, 0}, 1e-5) {
		t.Errorf("X = %v, want [0.5 0]", res.X)
	}
}

func TestProjGradBadBox(t *testing.T) {
	box := Box{Lo: []float64{1}, Hi: []float64{0}}
	if _, err := MinimizeProjGrad(bowl, box, []float64{0}, PGOptions{}); err == nil {
		t.Error("inverted box accepted")
	}
}

func TestBoxHelpers(t *testing.T) {
	box := unitBox2()
	if err := box.Validate(2); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := box.Validate(3); err == nil {
		t.Error("wrong-dimension Validate passed")
	}
	if !box.Contains([]float64{0, 0}) {
		t.Error("Contains rejected interior point")
	}
	if box.Contains([]float64{6, 0}) {
		t.Error("Contains accepted exterior point")
	}
	if box.Contains([]float64{0}) {
		t.Error("Contains accepted wrong-dimension point")
	}
	x := []float64{-9, 9}
	box.Project(x)
	if !mathutil.VecApproxEqual(x, []float64{-5, 5}, 0) {
		t.Errorf("Project = %v", x)
	}
}

func TestGradientDescentConverges(t *testing.T) {
	res, err := GradientDescent(bowl, unitBox2(), []float64{4, 4}, GDOptions{})
	if err != nil {
		t.Fatalf("GradientDescent: %v", err)
	}
	if !mathutil.VecApproxEqual(res.X, []float64{1, -2}, 1e-2) {
		t.Errorf("X = %v, want [1 -2]", res.X)
	}
}

func TestGradientDescentSlowerThanBarrierStyleMethods(t *testing.T) {
	// GD at fixed lr needs many more iterations than projected gradient
	// with line search — the effect behind Fig. 5(b).
	gd, err := GradientDescent(bowl, unitBox2(), []float64{4, 4}, GDOptions{LearningRate: 0.001})
	if err != nil {
		t.Fatalf("GradientDescent: %v", err)
	}
	pg, err := MinimizeProjGrad(bowl, unitBox2(), []float64{4, 4}, PGOptions{})
	if err != nil {
		t.Fatalf("MinimizeProjGrad: %v", err)
	}
	if gd.Iters <= pg.Iters {
		t.Errorf("expected GD (%d iters) to need more iterations than projected gradient (%d)", gd.Iters, pg.Iters)
	}
}

func TestAnnealFindsGlobalBasin(t *testing.T) {
	// Rastrigin-like multimodal function; SA should land near the global
	// optimum at the origin (value 0) rather than a side lobe.
	f := func(x []float64) float64 {
		s := 0.0
		for _, v := range x {
			s += v*v - 3*math.Cos(2*math.Pi*v) + 3
		}
		return s
	}
	box := Box{Lo: []float64{-5, -5}, Hi: []float64{5, 5}}
	res, err := Anneal(f, box, []float64{4, -4}, SAOptions{Iters: 30000, Seed: 3})
	if err != nil {
		t.Fatalf("Anneal: %v", err)
	}
	if res.Value > 1.0 {
		t.Errorf("Anneal value = %v, want < 1 (near global optimum)", res.Value)
	}
}

func TestAnnealRejectsInfeasible(t *testing.T) {
	// f is +Inf on half the box; SA must end in the feasible half.
	f := func(x []float64) float64 {
		if x[0] > 1 {
			return math.Inf(1)
		}
		return (x[0] + 3) * (x[0] + 3)
	}
	box := Box{Lo: []float64{-5}, Hi: []float64{5}}
	res, err := Anneal(f, box, []float64{0}, SAOptions{Iters: 5000, Seed: 2})
	if err != nil {
		t.Fatalf("Anneal: %v", err)
	}
	if res.X[0] > 1 {
		t.Errorf("Anneal ended infeasible: %v", res.X)
	}
	if !mathutil.ApproxEqual(res.X[0], -3, 0.1) {
		t.Errorf("Anneal X = %v, want ≈ -3", res.X)
	}
}

func TestRandomSearchFindsNeighborhood(t *testing.T) {
	res, err := RandomSearch(bowl, unitBox2(), RSOptions{Samples: 20000, Seed: 5})
	if err != nil {
		t.Fatalf("RandomSearch: %v", err)
	}
	if res.Value > 0.05 {
		t.Errorf("RandomSearch value = %v, want near 0", res.Value)
	}
}

func TestRandomSearchAllInfeasible(t *testing.T) {
	f := func([]float64) float64 { return math.Inf(1) }
	if _, err := RandomSearch(f, unitBox2(), RSOptions{Samples: 100}); err == nil {
		t.Error("all-infeasible search did not error")
	}
}

func TestRandomSearchDeterministicForSeed(t *testing.T) {
	a, err := RandomSearch(bowl, unitBox2(), RSOptions{Samples: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomSearch(bowl, unitBox2(), RSOptions{Samples: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !mathutil.VecApproxEqual(a.X, b.X, 0) || a.Value != b.Value {
		t.Error("RandomSearch not deterministic for fixed seed")
	}
}
