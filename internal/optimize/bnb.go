package optimize

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// BnBProblem describes a maximization over assignments of NumVars discrete
// variables, each taking a value index in [0, NumChoices). It mirrors the
// structure of Stage 2 of the QuHE algorithm (Algorithm 2), where each
// client's polynomial degree λ_n is chosen from a small set.
type BnBProblem struct {
	NumVars    int
	NumChoices int
	// Value returns the objective of a complete assignment (to maximize).
	Value func(assign []int) float64
	// UpperBound returns an optimistic (admissible) bound on the best
	// objective achievable by any completion of assign[:assigned].
	// A sound bound never underestimates; an unsound bound may prune the
	// optimum (exposed in tests and the ablation bench).
	UpperBound func(assign []int, assigned int) float64
}

// BnBResult reports the outcome of MaximizeBnB.
type BnBResult struct {
	Assign []int
	Value  float64
	// Nodes is the number of subproblems popped from the queue.
	Nodes int
	// Incumbents traces the best objective after each node expansion
	// (the Stage-2 convergence curve of Fig. 4(b)).
	Incumbents []float64
	// Bounds traces the upper bound of each popped subproblem: a finite,
	// non-increasing certificate curve converging onto the optimum (the
	// mirror image of the paper's rising incumbent plot).
	Bounds []float64
}

// bnbNode is a subproblem: a prefix assignment plus its upper bound.
type bnbNode struct {
	assign   []int
	assigned int
	bound    float64
}

// bnbQueue is a max-heap of subproblems ordered by upper bound, matching
// Algorithm 2's "extract the subproblem with the highest upper bound".
type bnbQueue []*bnbNode

func (q bnbQueue) Len() int            { return len(q) }
func (q bnbQueue) Less(i, j int) bool  { return q[i].bound > q[j].bound }
func (q bnbQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *bnbQueue) Push(x interface{}) { *q = append(*q, x.(*bnbNode)) }
func (q *bnbQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return item
}

// MaximizeBnB runs best-first branch & bound per Algorithm 2 of the paper.
func MaximizeBnB(p BnBProblem) (BnBResult, error) {
	var res BnBResult
	if p.NumVars <= 0 || p.NumChoices <= 0 {
		return res, fmt.Errorf("optimize: branch and bound needs positive dimensions, got %d vars × %d choices", p.NumVars, p.NumChoices)
	}
	if p.Value == nil || p.UpperBound == nil {
		return res, errors.New("optimize: branch and bound requires Value and UpperBound")
	}

	best := math.Inf(-1)
	var bestAssign []int

	q := &bnbQueue{}
	heap.Init(q)
	root := &bnbNode{assign: make([]int, p.NumVars), bound: math.Inf(1)}
	heap.Push(q, root)

	for q.Len() > 0 {
		node := heap.Pop(q).(*bnbNode)
		res.Nodes++
		res.Bounds = append(res.Bounds, node.bound)
		if node.bound <= best {
			// Everything left in a best-first queue is bounded by this
			// node's bound, so nothing better remains.
			break
		}
		if node.assigned == p.NumVars {
			if v := p.Value(node.assign); v > best {
				best = v
				bestAssign = append([]int(nil), node.assign...)
			}
			res.Incumbents = append(res.Incumbents, best)
			continue
		}
		for choice := 0; choice < p.NumChoices; choice++ {
			child := &bnbNode{
				assign:   append([]int(nil), node.assign...),
				assigned: node.assigned + 1,
			}
			child.assign[node.assigned] = choice
			child.bound = p.UpperBound(child.assign, child.assigned)
			if child.bound > best {
				heap.Push(q, child)
			}
		}
		res.Incumbents = append(res.Incumbents, best)
	}
	if bestAssign == nil {
		return res, errors.New("optimize: branch and bound pruned every leaf (unsound upper bound?)")
	}
	res.Assign = bestAssign
	res.Value = best
	return res, nil
}

// MaximizeExhaustive enumerates every assignment and returns the best. It is
// the correctness oracle for MaximizeBnB and the ablation baseline for the
// Stage-2 bench. evals reports the number of Value calls (NumChoices^NumVars).
func MaximizeExhaustive(numVars, numChoices int, value func([]int) float64) (assign []int, best float64, evals int) {
	assign = make([]int, numVars)
	cur := make([]int, numVars)
	best = math.Inf(-1)
	var rec func(i int)
	rec = func(i int) {
		if i == numVars {
			evals++
			if v := value(cur); v > best {
				best = v
				copy(assign, cur)
			}
			return
		}
		for c := 0; c < numChoices; c++ {
			cur[i] = c
			rec(i + 1)
		}
	}
	rec(0)
	return assign, best, evals
}
