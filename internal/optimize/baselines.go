package optimize

import (
	"errors"
	"math"
	"math/rand"

	"quhe/internal/mathutil"
)

// GDOptions configures the fixed-learning-rate gradient descent baseline.
// The QuHE paper uses learning rate 0.01 for its Stage-1 "GD" baseline
// (§VI-B); that is the default here.
type GDOptions struct {
	// LearningRate is the fixed step size. Default 0.01.
	LearningRate float64
	// MaxIter bounds the number of steps. Default 20000.
	MaxIter int
	// Tol stops when the objective improves by less than Tol between
	// iterations. Default 1e-10.
	Tol float64
}

func (o GDOptions) defaults() GDOptions {
	if o.LearningRate <= 0 {
		o.LearningRate = 0.01
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 20000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	return o
}

// Result is the common outcome type of the heuristic baselines.
type Result struct {
	X         []float64
	Value     float64
	Iters     int
	Converged bool
	Values    []float64 // objective trace (may be sub-sampled for SA/RS)
}

// GradientDescent minimizes f with a fixed learning rate, projecting onto
// the box after each step. It deliberately mirrors the naive baseline in the
// paper: no line search, no curvature information, so it takes far more
// iterations than the barrier method — which is the point of Fig. 5(b).
func GradientDescent(f Func, box Box, x0 []float64, opts GDOptions) (Result, error) {
	o := opts.defaults()
	var res Result
	if err := box.Validate(len(x0)); err != nil {
		return res, err
	}
	x := mathutil.Clone(x0)
	box.Project(x)
	fx := f(x)
	for iter := 0; iter < o.MaxIter; iter++ {
		res.Iters++
		g := Gradient(f, x)
		if !mathutil.AllFinite(g) {
			return res, errors.New("optimize: non-finite gradient in gradient descent")
		}
		for i := range x {
			x[i] = mathutil.Clamp(x[i]-o.LearningRate*g[i], box.Lo[i], box.Hi[i])
		}
		next := f(x)
		res.Values = append(res.Values, next)
		if math.Abs(fx-next) < o.Tol {
			fx = next
			res.Converged = true
			break
		}
		fx = next
	}
	res.X = x
	res.Value = fx
	return res, nil
}

// SAOptions configures simulated annealing (the simulannealbnd substitute).
type SAOptions struct {
	// Iters is the number of proposal steps. Default 20000.
	Iters int
	// InitTemp is the starting temperature. Default 1.
	InitTemp float64
	// Cooling is the geometric cooling factor per step. Default 0.9995.
	Cooling float64
	// StepFrac scales proposal moves relative to box width. Default 0.1.
	StepFrac float64
	// Seed seeds the internal RNG; 0 means a fixed default seed so runs
	// are reproducible.
	Seed int64
}

func (o SAOptions) defaults() SAOptions {
	if o.Iters <= 0 {
		o.Iters = 20000
	}
	if o.InitTemp <= 0 {
		o.InitTemp = 1
	}
	if o.Cooling <= 0 || o.Cooling >= 1 {
		o.Cooling = 0.9995
	}
	if o.StepFrac <= 0 {
		o.StepFrac = 0.1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Anneal minimizes f over the box by simulated annealing. Infeasible
// proposals (f = +Inf) are always rejected. The returned trace records the
// best-so-far value each iteration it improves.
func Anneal(f Func, box Box, x0 []float64, opts SAOptions) (Result, error) {
	o := opts.defaults()
	var res Result
	if err := box.Validate(len(x0)); err != nil {
		return res, err
	}
	rng := rand.New(rand.NewSource(o.Seed))
	x := mathutil.Clone(x0)
	box.Project(x)
	fx := f(x)
	best := mathutil.Clone(x)
	fbest := fx
	temp := o.InitTemp
	width := make([]float64, len(x))
	for i := range width {
		width[i] = box.Hi[i] - box.Lo[i]
	}
	cand := make([]float64, len(x))
	for iter := 0; iter < o.Iters; iter++ {
		res.Iters++
		for i := range x {
			cand[i] = mathutil.Clamp(x[i]+rng.NormFloat64()*o.StepFrac*width[i]*math.Max(temp, 1e-3),
				box.Lo[i], box.Hi[i])
		}
		fc := f(cand)
		if fc < fx || (!math.IsInf(fc, 1) && rng.Float64() < math.Exp((fx-fc)/math.Max(temp, 1e-12))) {
			copy(x, cand)
			fx = fc
			if fx < fbest {
				fbest = fx
				copy(best, x)
				res.Values = append(res.Values, fbest)
			}
		}
		temp *= o.Cooling
	}
	res.X = best
	res.Value = fbest
	res.Converged = true
	return res, nil
}

// RSOptions configures RandomSearch. The paper's "random selection" baseline
// samples 10⁴ uniform points from the feasible space and keeps the best.
type RSOptions struct {
	// Samples is the number of uniform draws. Default 10000.
	Samples int
	// Seed seeds the RNG; 0 means a fixed default seed.
	Seed int64
}

func (o RSOptions) defaults() RSOptions {
	if o.Samples <= 0 {
		o.Samples = 10000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// RandomSearch minimizes f by uniform sampling over the box, ignoring
// samples where f is +Inf. It returns an error when every sample was
// infeasible.
func RandomSearch(f Func, box Box, opts RSOptions) (Result, error) {
	o := opts.defaults()
	var res Result
	n := len(box.Lo)
	if err := box.Validate(n); err != nil {
		return res, err
	}
	rng := rand.New(rand.NewSource(o.Seed))
	best := make([]float64, n)
	fbest := math.Inf(1)
	x := make([]float64, n)
	for s := 0; s < o.Samples; s++ {
		res.Iters++
		for i := range x {
			x[i] = box.Lo[i] + rng.Float64()*(box.Hi[i]-box.Lo[i])
		}
		if fx := f(x); fx < fbest {
			fbest = fx
			copy(best, x)
			res.Values = append(res.Values, fbest)
		}
	}
	if math.IsInf(fbest, 1) {
		return res, errors.New("optimize: random search found no feasible sample")
	}
	res.X = best
	res.Value = fbest
	res.Converged = true
	return res, nil
}
