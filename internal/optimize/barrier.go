package optimize

import (
	"errors"
	"fmt"
	"math"

	"quhe/internal/mathutil"
)

// Ineq is an inequality constraint F(x) ≤ 0 for the barrier method. Grad and
// Hess are optional analytic derivatives; when nil they are estimated by
// finite differences. Use LinearIneq for affine constraints — it supplies
// exact constant derivatives, which dominates the cost of a barrier
// iteration for the mostly-affine programs in this repository.
type Ineq struct {
	F    Func
	Grad func(x []float64) []float64
	Hess func(x []float64) [][]float64
}

// FuncIneq wraps a plain closure as a finite-differenced constraint.
func FuncIneq(f Func) Ineq { return Ineq{F: f} }

// LinearIneq builds the affine constraint a·x + b ≤ 0 with exact
// derivatives (constant gradient, zero Hessian).
func LinearIneq(a []float64, b float64) Ineq {
	coeff := mathutil.Clone(a)
	return Ineq{
		F:    func(x []float64) float64 { return mathutil.Dot(coeff, x) + b },
		Grad: func([]float64) []float64 { return coeff },
		Hess: func(x []float64) [][]float64 {
			h := make([][]float64, len(x))
			for i := range h {
				h[i] = make([]float64, len(x))
			}
			return h
		},
	}
}

// BoundIneq builds the single-coordinate constraint sign·x[i] + b ≤ 0.
// With sign=+1 it expresses x[i] ≤ −b; with sign=−1 it expresses x[i] ≥ b.
func BoundIneq(n, i int, sign, b float64) Ineq {
	a := make([]float64, n)
	a[i] = sign
	return LinearIneq(a, b)
}

// BarrierOptions configures the log-barrier interior-point method.
// The zero value is usable: Defaults fills in standard settings.
type BarrierOptions struct {
	// T0 is the initial barrier weight t. Default 1.
	T0 float64
	// Mu is the factor by which t grows between centering steps. Default 20.
	Mu float64
	// Tol is the target duality gap m/t at which the method stops.
	// Default 1e-6.
	Tol float64
	// NewtonTol is the Newton-decrement tolerance of the inner solve.
	// Default 1e-9.
	NewtonTol float64
	// MaxNewton bounds inner Newton iterations per centering step.
	// Default 60.
	MaxNewton int
	// MaxOuter bounds the number of centering steps. Default 60.
	MaxOuter int
}

// Defaults returns o with zero fields replaced by standard values.
func (o BarrierOptions) Defaults() BarrierOptions {
	if o.T0 <= 0 {
		o.T0 = 1
	}
	if o.Mu <= 1 {
		o.Mu = 20
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.NewtonTol <= 0 {
		o.NewtonTol = 1e-9
	}
	if o.MaxNewton <= 0 {
		o.MaxNewton = 60
	}
	if o.MaxOuter <= 0 {
		o.MaxOuter = 60
	}
	return o
}

// BarrierResult reports the outcome of MinimizeBarrier.
type BarrierResult struct {
	// X is the best point found.
	X []float64
	// Value is f0(X).
	Value float64
	// Converged is true when the duality gap dropped below Tol.
	Converged bool
	// OuterIters and NewtonIters count centering steps and total inner
	// Newton iterations.
	OuterIters  int
	NewtonIters int
	// Values records f0 after every inner Newton iteration (the "POBJ"
	// trace of Fig. 4(c)).
	Values []float64
	// Gaps records the duality gap m/t after every centering step
	// (Fig. 4(d)).
	Gaps []float64
}

// ErrInfeasibleStart is returned when x0 violates a constraint.
var ErrInfeasibleStart = errors.New("optimize: start point is not strictly feasible")

// MinimizeBarrier minimizes the smooth convex objective f0 subject to
// ineqs[i].F(x) ≤ 0 using the classical log-barrier method with a damped
// Newton inner loop (Boyd & Vandenberghe, ch. 11). x0 must be strictly
// feasible: ineqs[i].F(x0) < 0 for all i.
//
// This routine is the repository's substitute for the CVX interior-point
// solver the paper uses; for the smooth convex programs of Stages 1 and 3 it
// converges to the same KKT points.
func MinimizeBarrier(f0 Func, ineqs []Ineq, x0 []float64, opts BarrierOptions) (BarrierResult, error) {
	o := opts.Defaults()
	var res BarrierResult
	if len(x0) == 0 {
		return res, errors.New("optimize: empty start point")
	}
	for i, c := range ineqs {
		if v := c.F(x0); !(v < 0) {
			return res, fmt.Errorf("%w: constraint %d = %g", ErrInfeasibleStart, i, v)
		}
	}

	n := len(x0)
	m := float64(len(ineqs))
	x := mathutil.Clone(x0)
	t := o.T0

	strictlyFeasible := func(p []float64) bool {
		for _, c := range ineqs {
			if !(c.F(p) < 0) {
				return false
			}
		}
		return true
	}
	// ftVal evaluates t·f0 + φ, φ(x) = Σ −log(−fi(x)); +Inf off-domain.
	ftVal := func(tt float64, p []float64) float64 {
		v := tt * f0(p)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		for _, c := range ineqs {
			ci := c.F(p)
			if ci >= 0 {
				return math.Inf(1)
			}
			v -= math.Log(-ci)
		}
		return v
	}

	for outer := 0; outer < o.MaxOuter; outer++ {
		res.OuterIters++
		for iter := 0; iter < o.MaxNewton; iter++ {
			g, hess, err := barrierDerivatives(f0, ineqs, x, t)
			if err != nil {
				return res, fmt.Errorf("optimize: outer %d: %w", outer, err)
			}
			dir, ok := solveNewton(hess, g, n)
			if !ok {
				dir = mathutil.Scale(-1, g)
			}
			// Newton decrement: λ² = −gᵀd; stop when the quadratic model
			// predicts negligible improvement.
			decrement := -mathutil.Dot(g, dir) / 2
			if decrement < o.NewtonTol && mathutil.Norm2(g) < 1e-4*(1+math.Abs(ftVal(t, x))) {
				break
			}
			fx := ftVal(t, x)
			ftFunc := func(p []float64) float64 { return ftVal(t, p) }
			step := backtrack(ftFunc, x, dir, g, fx, 1, 1e-4, 0.5, strictlyFeasible)
			if step == 0 {
				break
			}
			mathutil.AXPYInPlace(step, dir, x)
			res.NewtonIters++
			res.Values = append(res.Values, f0(x))
		}
		gap := m / t
		res.Gaps = append(res.Gaps, gap)
		if gap < o.Tol {
			res.Converged = true
			break
		}
		t *= o.Mu
	}
	res.X = x
	res.Value = f0(x)
	return res, nil
}

// barrierDerivatives assembles the gradient and Hessian of
// t·f0 + Σ −log(−fi) from per-function derivatives:
//
//	∇  = t∇f0 + Σ ∇fi/(−fi)
//	∇² = t∇²f0 + Σ [ ∇fi∇fiᵀ/fi² + ∇²fi/(−fi) ]
//
// Derivatives of f0 and non-analytic constraints come from safe finite
// differences, which never evaluate the logarithm off-domain.
func barrierDerivatives(f0 Func, ineqs []Ineq, x []float64, t float64) ([]float64, [][]float64, error) {
	n := len(x)
	g := safeGradient(f0, x)
	if !mathutil.AllFinite(g) {
		return nil, nil, errors.New("non-finite objective gradient")
	}
	for i := range g {
		g[i] *= t
	}
	hess := safeHessian(f0, x)
	for i := range hess {
		for j := range hess[i] {
			hess[i][j] *= t
			if math.IsNaN(hess[i][j]) || math.IsInf(hess[i][j], 0) {
				hess[i][j] = 0
			}
		}
	}
	for k, c := range ineqs {
		ci := c.F(x)
		if ci >= 0 {
			return nil, nil, fmt.Errorf("constraint %d non-negative (%g) at interior point", k, ci)
		}
		var gc []float64
		if c.Grad != nil {
			gc = c.Grad(x)
		} else {
			gc = safeGradient(c.F, x)
		}
		inv := 1 / (-ci)
		inv2 := inv * inv
		for i := 0; i < n; i++ {
			g[i] += gc[i] * inv
			row := hess[i]
			gci := gc[i]
			for j := 0; j < n; j++ {
				row[j] += gci * gc[j] * inv2
			}
		}
		if c.Hess != nil {
			hc := c.Hess(x)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					hess[i][j] += hc[i][j] * inv
				}
			}
		} else {
			hc := safeHessian(c.F, x)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					v := hc[i][j] * inv
					if !math.IsNaN(v) && !math.IsInf(v, 0) {
						hess[i][j] += v
					}
				}
			}
		}
	}
	if !mathutil.AllFinite(g) {
		return nil, nil, errors.New("non-finite barrier gradient")
	}
	return g, hess, nil
}

// solveNewton solves H d = −g with growing ridge regularization and reports
// whether a descent direction was obtained.
func solveNewton(hess [][]float64, g []float64, n int) ([]float64, bool) {
	for _, ridge := range []float64{0, 1e-10, 1e-6, 1e-2, 1} {
		aug := make([][]float64, n)
		for i := range aug {
			aug[i] = make([]float64, n+1)
			copy(aug[i], hess[i])
			aug[i][i] += ridge * (1 + math.Abs(hess[i][i]))
			aug[i][n] = -g[i]
		}
		d, err := mathutil.SolveLinear(aug)
		if err != nil || !mathutil.AllFinite(d) {
			continue
		}
		if mathutil.Dot(d, g) < 0 {
			return d, true
		}
	}
	return nil, false
}

// safeGradient is Gradient with one-sided fallbacks when an evaluation is
// non-finite (e.g. a log-domain objective probed just past its boundary).
func safeGradient(f Func, x []float64) []float64 {
	g := make([]float64, len(x))
	xx := mathutil.Clone(x)
	var f0 float64
	f0Known := false
	for i := range x {
		h := derivStep(x[i])
		var gi float64
		found := false
		for attempt := 0; attempt < 6 && !found; attempt++ {
			xx[i] = x[i] + h
			fp := f(xx)
			xx[i] = x[i] - h
			fm := f(xx)
			xx[i] = x[i]
			pOK := !math.IsNaN(fp) && !math.IsInf(fp, 0)
			mOK := !math.IsNaN(fm) && !math.IsInf(fm, 0)
			switch {
			case pOK && mOK:
				gi = (fp - fm) / (2 * h)
				found = true
			case pOK || mOK:
				if !f0Known {
					f0 = f(x)
					f0Known = true
				}
				if !math.IsNaN(f0) && !math.IsInf(f0, 0) {
					if pOK {
						gi = (fp - f0) / h
					} else {
						gi = (f0 - fm) / h
					}
					found = true
				}
			}
			h /= 8
		}
		g[i] = gi
	}
	return g
}

// safeHessian is Hessian with non-finite entries replaced by zero; the ridge
// regularization in solveNewton absorbs the resulting model error.
func safeHessian(f Func, x []float64) [][]float64 {
	h := Hessian(f, x)
	for i := range h {
		for j := range h[i] {
			if math.IsNaN(h[i][j]) || math.IsInf(h[i][j], 0) {
				h[i][j] = 0
			}
		}
	}
	return h
}
