package optimize

import (
	"math"
	"testing"

	"quhe/internal/mathutil"
)

func quadratic(x []float64) float64 {
	// f(x,y) = (x-2)² + 3(y+1)² + xy
	return (x[0]-2)*(x[0]-2) + 3*(x[1]+1)*(x[1]+1) + x[0]*x[1]
}

func TestGradientQuadratic(t *testing.T) {
	x := []float64{1.5, -0.5}
	g := Gradient(quadratic, x)
	// ∂f/∂x = 2(x-2) + y, ∂f/∂y = 6(y+1) + x
	want := []float64{2*(x[0]-2) + x[1], 6*(x[1]+1) + x[0]}
	if !mathutil.VecApproxEqual(g, want, 1e-6) {
		t.Errorf("Gradient = %v, want %v", g, want)
	}
}

func TestGradientDoesNotMutate(t *testing.T) {
	x := []float64{1, 2}
	Gradient(quadratic, x)
	if x[0] != 1 || x[1] != 2 {
		t.Errorf("Gradient mutated x: %v", x)
	}
}

func TestHessianQuadratic(t *testing.T) {
	h := Hessian(quadratic, []float64{0.3, 0.7})
	want := [][]float64{{2, 1}, {1, 6}}
	for i := range want {
		if !mathutil.VecApproxEqual(h[i], want[i], 1e-3) {
			t.Errorf("Hessian row %d = %v, want %v", i, h[i], want[i])
		}
	}
}

func TestGradientNonPolynomial(t *testing.T) {
	f := func(x []float64) float64 { return math.Exp(x[0]) * math.Sin(x[1]) }
	x := []float64{0.5, 1.2}
	g := Gradient(f, x)
	want := []float64{math.Exp(0.5) * math.Sin(1.2), math.Exp(0.5) * math.Cos(1.2)}
	if !mathutil.VecApproxEqual(g, want, 1e-7) {
		t.Errorf("Gradient = %v, want %v", g, want)
	}
}

func TestHessianSymmetry(t *testing.T) {
	f := func(x []float64) float64 {
		return math.Exp(x[0]*x[1]) + x[2]*x[2]*x[0]
	}
	h := Hessian(f, []float64{0.3, -0.2, 0.9})
	for i := range h {
		for j := range h {
			if h[i][j] != h[j][i] {
				t.Errorf("Hessian not symmetric at (%d,%d): %v vs %v", i, j, h[i][j], h[j][i])
			}
		}
	}
}
