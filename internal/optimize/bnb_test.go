package optimize

import (
	"math"
	"math/rand"
	"testing"
)

// separableProblem builds a BnB problem whose objective is a sum of
// per-variable scores, with the exact per-variable max as upper bound.
func separableProblem(scores [][]float64) BnBProblem {
	numVars := len(scores)
	numChoices := len(scores[0])
	maxPer := make([]float64, numVars)
	for i, row := range scores {
		maxPer[i] = math.Inf(-1)
		for _, v := range row {
			if v > maxPer[i] {
				maxPer[i] = v
			}
		}
	}
	return BnBProblem{
		NumVars:    numVars,
		NumChoices: numChoices,
		Value: func(assign []int) float64 {
			s := 0.0
			for i, c := range assign {
				s += scores[i][c]
			}
			return s
		},
		UpperBound: func(assign []int, assigned int) float64 {
			s := 0.0
			for i := 0; i < assigned; i++ {
				s += scores[i][assign[i]]
			}
			for i := assigned; i < numVars; i++ {
				s += maxPer[i]
			}
			return s
		},
	}
}

func TestBnBSeparableMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		numVars := 2 + rng.Intn(5)
		numChoices := 2 + rng.Intn(3)
		scores := make([][]float64, numVars)
		for i := range scores {
			scores[i] = make([]float64, numChoices)
			for j := range scores[i] {
				scores[i][j] = rng.NormFloat64() * 10
			}
		}
		p := separableProblem(scores)
		got, err := MaximizeBnB(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		_, want, _ := MaximizeExhaustive(numVars, numChoices, p.Value)
		if math.Abs(got.Value-want) > 1e-12 {
			t.Errorf("trial %d: BnB = %v, exhaustive = %v", trial, got.Value, want)
		}
	}
}

// TestBnBCoupledMaxTerm mimics Stage 2's structure: separable rewards minus
// a max-delay coupling term.
func TestBnBCoupledMaxTerm(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		numVars := 2 + rng.Intn(4)
		numChoices := 3
		reward := make([][]float64, numVars)
		delay := make([][]float64, numVars)
		for i := 0; i < numVars; i++ {
			reward[i] = make([]float64, numChoices)
			delay[i] = make([]float64, numChoices)
			for j := 0; j < numChoices; j++ {
				reward[i][j] = rng.Float64() * 10
				delay[i][j] = rng.Float64() * 5
			}
		}
		value := func(assign []int) float64 {
			s, dmax := 0.0, 0.0
			for i, c := range assign {
				s += reward[i][c]
				if delay[i][c] > dmax {
					dmax = delay[i][c]
				}
			}
			return s - dmax
		}
		// Admissible bound: max rewards for unassigned vars; the max-delay
		// term is lower-bounded by the max over (assigned delays, min
		// per-variable delay for the unassigned).
		upper := func(assign []int, assigned int) float64 {
			s := 0.0
			dmax := 0.0
			for i := 0; i < assigned; i++ {
				s += reward[i][assign[i]]
				if d := delay[i][assign[i]]; d > dmax {
					dmax = d
				}
			}
			for i := assigned; i < numVars; i++ {
				best := math.Inf(-1)
				minDelay := math.Inf(1)
				for j := 0; j < numChoices; j++ {
					if reward[i][j] > best {
						best = reward[i][j]
					}
					if delay[i][j] < minDelay {
						minDelay = delay[i][j]
					}
				}
				s += best
				if minDelay > dmax {
					dmax = minDelay
				}
			}
			return s - dmax
		}
		p := BnBProblem{NumVars: numVars, NumChoices: numChoices, Value: value, UpperBound: upper}
		got, err := MaximizeBnB(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		_, want, _ := MaximizeExhaustive(numVars, numChoices, value)
		if math.Abs(got.Value-want) > 1e-12 {
			t.Errorf("trial %d: BnB = %v, exhaustive = %v", trial, got.Value, want)
		}
	}
}

func TestBnBPrunes(t *testing.T) {
	// With a tight bound on a strongly separable problem, BnB should visit
	// far fewer nodes than exhaustive enumeration evaluates leaves.
	scores := make([][]float64, 8)
	for i := range scores {
		scores[i] = []float64{0, 100, 1} // choice 1 dominates
	}
	p := separableProblem(scores)
	res, err := MaximizeBnB(p)
	if err != nil {
		t.Fatal(err)
	}
	_, _, evals := MaximizeExhaustive(8, 3, p.Value)
	if res.Nodes >= evals {
		t.Errorf("BnB nodes %d >= exhaustive evals %d (no pruning)", res.Nodes, evals)
	}
	for _, c := range res.Assign {
		if c != 1 {
			t.Errorf("Assign = %v, want all 1s", res.Assign)
		}
	}
}

func TestBnBIncumbentsMonotone(t *testing.T) {
	scores := [][]float64{{1, 5, 2}, {7, 3, 4}, {2, 2, 9}}
	res, err := MaximizeBnB(separableProblem(scores))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Incumbents); i++ {
		if res.Incumbents[i] < res.Incumbents[i-1] {
			t.Errorf("incumbent decreased at %d: %v", i, res.Incumbents[:i+1])
		}
	}
	if res.Value != 5+7+9 {
		t.Errorf("Value = %v, want 21", res.Value)
	}
}

func TestBnBValidation(t *testing.T) {
	if _, err := MaximizeBnB(BnBProblem{}); err == nil {
		t.Error("zero problem accepted")
	}
	if _, err := MaximizeBnB(BnBProblem{NumVars: 1, NumChoices: 1}); err == nil {
		t.Error("nil Value/UpperBound accepted")
	}
}

func TestBnBUnsoundBoundDetected(t *testing.T) {
	p := BnBProblem{
		NumVars:    2,
		NumChoices: 2,
		Value:      func(a []int) float64 { return float64(a[0] + a[1]) },
		// Bound of −∞ prunes everything.
		UpperBound: func([]int, int) float64 { return math.Inf(-1) },
	}
	if _, err := MaximizeBnB(p); err == nil {
		t.Error("unsound bound did not produce an error")
	}
}

func TestExhaustiveCountsEvals(t *testing.T) {
	_, best, evals := MaximizeExhaustive(3, 4, func(a []int) float64 {
		return float64(a[0]*100 + a[1]*10 + a[2])
	})
	if evals != 64 {
		t.Errorf("evals = %d, want 64", evals)
	}
	if best != 333 {
		t.Errorf("best = %v, want 333", best)
	}
}
