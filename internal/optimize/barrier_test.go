package optimize

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"quhe/internal/mathutil"
)

// TestBarrierActiveConstraint solves
//
//	min (x−2)² + (y−3)²  s.t.  x+y ≤ 4, x ≥ 0, y ≥ 0
//
// whose optimum projects (2,3) onto the line x+y=4: (1.5, 2.5).
func TestBarrierActiveConstraint(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-2)*(x[0]-2) + (x[1]-3)*(x[1]-3)
	}
	ineqs := []Ineq{
		FuncIneq(func(x []float64) float64 { return x[0] + x[1] - 4 }),
		FuncIneq(func(x []float64) float64 { return -x[0] }),
		FuncIneq(func(x []float64) float64 { return -x[1] }),
	}
	res, err := MinimizeBarrier(f, ineqs, []float64{0.5, 0.5}, BarrierOptions{})
	if err != nil {
		t.Fatalf("MinimizeBarrier: %v", err)
	}
	if !res.Converged {
		t.Error("did not converge")
	}
	if !mathutil.VecApproxEqual(res.X, []float64{1.5, 2.5}, 1e-3) {
		t.Errorf("X = %v, want [1.5 2.5]", res.X)
	}
	if !mathutil.ApproxEqual(res.Value, 0.5, 1e-3) {
		t.Errorf("Value = %v, want 0.5", res.Value)
	}
}

// TestBarrierInteriorOptimum: unconstrained optimum already satisfies the
// constraints, so the barrier must find it exactly.
func TestBarrierInteriorOptimum(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-1)*(x[0]-1) + 2*(x[1]-1)*(x[1]-1)
	}
	ineqs := []Ineq{FuncIneq(func(x []float64) float64 { return x[0] + x[1] - 100 })}
	res, err := MinimizeBarrier(f, ineqs, []float64{5, 5}, BarrierOptions{})
	if err != nil {
		t.Fatalf("MinimizeBarrier: %v", err)
	}
	if !mathutil.VecApproxEqual(res.X, []float64{1, 1}, 1e-4) {
		t.Errorf("X = %v, want [1 1]", res.X)
	}
}

func TestBarrierInfeasibleStart(t *testing.T) {
	f := func(x []float64) float64 { return x[0] }
	ineqs := []Ineq{FuncIneq(func(x []float64) float64 { return x[0] - 1 })}
	_, err := MinimizeBarrier(f, ineqs, []float64{2}, BarrierOptions{})
	if !errors.Is(err, ErrInfeasibleStart) {
		t.Errorf("err = %v, want ErrInfeasibleStart", err)
	}
}

func TestBarrierEmptyStart(t *testing.T) {
	if _, err := MinimizeBarrier(func([]float64) float64 { return 0 }, nil, nil, BarrierOptions{}); err == nil {
		t.Error("empty start accepted")
	}
}

// TestBarrierGapDecreases: the duality gap trace m/t must be strictly
// decreasing — this is the property plotted in Fig. 4(d).
func TestBarrierGapDecreases(t *testing.T) {
	f := func(x []float64) float64 { return x[0] * x[0] }
	ineqs := []Ineq{
		FuncIneq(func(x []float64) float64 { return x[0] - 5 }),
		FuncIneq(func(x []float64) float64 { return -x[0] - 5 }),
	}
	res, err := MinimizeBarrier(f, ineqs, []float64{1}, BarrierOptions{})
	if err != nil {
		t.Fatalf("MinimizeBarrier: %v", err)
	}
	if len(res.Gaps) < 2 {
		t.Fatalf("too few gap samples: %d", len(res.Gaps))
	}
	for i := 1; i < len(res.Gaps); i++ {
		if res.Gaps[i] >= res.Gaps[i-1] {
			t.Errorf("gap did not decrease at step %d: %v -> %v", i, res.Gaps[i-1], res.Gaps[i])
		}
	}
	if last := res.Gaps[len(res.Gaps)-1]; last > 1e-6 {
		t.Errorf("final gap %v > tolerance", last)
	}
}

// TestBarrierFeasibilityMaintained: every strictly feasible start must yield
// a feasible solution. Exercised on a random family of LP-like problems.
func TestBarrierFeasibilityMaintained(t *testing.T) {
	f := func(x []float64) float64 { return -x[0] - 2*x[1] } // maximize x+2y
	ineqs := []Ineq{
		LinearIneq([]float64{1, 1}, -3),
		BoundIneq(2, 0, 1, -2),
		BoundIneq(2, 1, 1, -2),
		BoundIneq(2, 0, -1, 0),
		BoundIneq(2, 1, -1, 0),
	}
	res, err := MinimizeBarrier(f, ineqs, []float64{0.1, 0.1}, BarrierOptions{})
	if err != nil {
		t.Fatalf("MinimizeBarrier: %v", err)
	}
	for i, c := range ineqs {
		if v := c.F(res.X); v > 1e-6 {
			t.Errorf("constraint %d violated: %v", i, v)
		}
	}
	// LP optimum at vertex (1,2): value -5.
	if !mathutil.ApproxEqual(res.Value, -5, 1e-2) {
		t.Errorf("Value = %v, want -5", res.Value)
	}
}

// TestBarrierLogDomain exercises a Stage-1-like problem with logs:
// min −Σ ln(x_i) s.t. Σ x_i ≤ 1, which has solution x_i = 1/n.
func TestBarrierLogDomain(t *testing.T) {
	n := 4
	f := func(x []float64) float64 {
		s := 0.0
		for _, v := range x {
			if v <= 0 {
				return math.Inf(1)
			}
			s -= math.Log(v)
		}
		return s
	}
	ineqs := []Ineq{
		FuncIneq(func(x []float64) float64 { return mathutil.Sum(x) - 1 }),
	}
	for i := 0; i < n; i++ {
		ineqs = append(ineqs, BoundIneq(n, i, -1, 1e-9))
	}
	x0 := mathutil.Fill(n, 0.1)
	res, err := MinimizeBarrier(f, ineqs, x0, BarrierOptions{})
	if err != nil {
		t.Fatalf("MinimizeBarrier: %v", err)
	}
	want := mathutil.Fill(n, 0.25)
	if !mathutil.VecApproxEqual(res.X, want, 1e-3) {
		t.Errorf("X = %v, want %v", res.X, want)
	}
}

func TestBarrierOptionsDefaults(t *testing.T) {
	o := BarrierOptions{}.Defaults()
	if o.T0 != 1 || o.Mu != 20 || o.Tol != 1e-6 || o.MaxNewton != 60 || o.MaxOuter != 60 {
		t.Errorf("Defaults = %+v", o)
	}
	custom := BarrierOptions{Mu: 50}.Defaults()
	if custom.Mu != 50 {
		t.Errorf("Defaults overwrote Mu: %v", custom.Mu)
	}
}

// TestBarrierAgreesWithProjGradOnRandomQPs cross-checks the two convex
// solvers on random strongly convex quadratics over boxes: both must find
// the same minimizer.
func TestBarrierAgreesWithProjGradOnRandomQPs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(4)
		// Diagonal-dominant quadratic: f = Σ a_i (x_i − c_i)² + cross terms.
		a := make([]float64, n)
		c := make([]float64, n)
		for i := range a {
			a[i] = 0.5 + rng.Float64()*3
			c[i] = rng.NormFloat64() * 2
		}
		cross := rng.Float64() * 0.2
		f := func(x []float64) float64 {
			s := 0.0
			for i := range x {
				d := x[i] - c[i]
				s += a[i] * d * d
			}
			for i := 1; i < len(x); i++ {
				s += cross * (x[i] - c[i]) * (x[i-1] - c[i-1])
			}
			return s
		}
		lo, hi := mathutil.Fill(n, -1.5), mathutil.Fill(n, 1.5)
		box := Box{Lo: lo, Hi: hi}

		var ineqs []Ineq
		for i := 0; i < n; i++ {
			ineqs = append(ineqs,
				BoundIneq(n, i, 1, -1.5),  // x_i ≤ 1.5
				BoundIneq(n, i, -1, -1.5), // x_i ≥ −1.5
			)
		}
		x0 := make([]float64, n)
		bres, err := MinimizeBarrier(f, ineqs, x0, BarrierOptions{})
		if err != nil {
			t.Fatalf("trial %d: barrier: %v", trial, err)
		}
		pres, err := MinimizeProjGrad(f, box, x0, PGOptions{MaxIter: 3000})
		if err != nil {
			t.Fatalf("trial %d: projgrad: %v", trial, err)
		}
		if !mathutil.ApproxEqual(bres.Value, pres.Value, 1e-4) {
			t.Errorf("trial %d: barrier %v vs projgrad %v", trial, bres.Value, pres.Value)
		}
	}
}

// TestBarrierAgreesWithAnnealOnSmoothProblem: on an easy convex problem the
// heuristic should land near the barrier optimum (sanity link between the
// exact and stochastic solver families).
func TestBarrierAgreesWithAnnealOnSmoothProblem(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-0.4)*(x[0]-0.4) + 2*(x[1]+0.3)*(x[1]+0.3)
	}
	ineqs := []Ineq{
		BoundIneq(2, 0, 1, -2), BoundIneq(2, 0, -1, -2),
		BoundIneq(2, 1, 1, -2), BoundIneq(2, 1, -1, -2),
	}
	bres, err := MinimizeBarrier(f, ineqs, []float64{0, 0}, BarrierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	box := Box{Lo: []float64{-2, -2}, Hi: []float64{2, 2}}
	ares, err := Anneal(f, box, []float64{1.5, 1.5}, SAOptions{Iters: 30000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ares.Value < bres.Value-1e-9 {
		t.Errorf("SA (%v) beat the barrier (%v) on a convex problem", ares.Value, bres.Value)
	}
	if ares.Value > bres.Value+0.01 {
		t.Errorf("SA (%v) far from barrier optimum (%v)", ares.Value, bres.Value)
	}
}
