package optimize

import (
	"quhe/internal/mathutil"
)

// backtrack performs an Armijo backtracking line search for minimization.
// It returns the accepted step length t such that
//
//	f(x + t·dir) ≤ fx + c1·t·⟨g, dir⟩   and   accept(x + t·dir) == true,
//
// halving (well, multiplying by beta) from t0 until both hold or the step
// underflows. If no acceptable step is found it returns 0.
//
// accept may be nil, in which case only the Armijo condition is enforced.
// It is used by the barrier method to keep iterates strictly feasible.
func backtrack(f Func, x, dir, g []float64, fx, t0, c1, beta float64, accept func([]float64) bool) float64 {
	if t0 <= 0 {
		t0 = 1
	}
	slope := mathutil.Dot(g, dir)
	t := t0
	trial := make([]float64, len(x))
	for t > 1e-16 {
		for i := range x {
			trial[i] = x[i] + t*dir[i]
		}
		if accept == nil || accept(trial) {
			if fv := f(trial); fv <= fx+c1*t*slope {
				return t
			}
		}
		t *= beta
	}
	return 0
}
