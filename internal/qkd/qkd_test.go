package qkd

import (
	"bytes"
	"errors"
	"math"
	"sync"
	"testing"

	"quhe/internal/qnet"
)

func TestExchangeNoiselessBB84(t *testing.T) {
	res, err := Exchange(ExchangeConfig{RawBits: 8192, QBER: 0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Key == nil {
		t.Fatal("no key produced")
	}
	// About half the raw bits survive sifting.
	if res.SiftedBits < 3500 || res.SiftedBits > 4700 {
		t.Errorf("sifted %d of 8192, want ≈ half", res.SiftedBits)
	}
	if res.EstimatedQBER != 0 || res.TrueQBER != 0 {
		t.Errorf("noiseless QBER: est %v true %v", res.EstimatedQBER, res.TrueQBER)
	}
	if res.SecretFraction < 0.99 {
		t.Errorf("secret fraction %v, want ≈ 1", res.SecretFraction)
	}
}

func TestExchangeNoisyReconciles(t *testing.T) {
	for _, qber := range []float64{0.02, 0.05, 0.08} {
		res, err := Exchange(ExchangeConfig{RawBits: 16384, QBER: qber, Seed: 3})
		if err != nil {
			t.Fatalf("qber %v: %v", qber, err)
		}
		// Estimated QBER tracks the channel error rate.
		if math.Abs(res.EstimatedQBER-qber) > 0.03 {
			t.Errorf("qber %v: estimate %v", qber, res.EstimatedQBER)
		}
		if res.LeakedBits == 0 {
			t.Errorf("qber %v: reconciliation leaked nothing yet errors existed", qber)
		}
		if len(res.Key) == 0 {
			t.Errorf("qber %v: empty key", qber)
		}
	}
}

func TestExchangeKeysAreDifferentAcrossSeeds(t *testing.T) {
	a, err := Exchange(ExchangeConfig{RawBits: 4096, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Exchange(ExchangeConfig{RawBits: 4096, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Key, b.Key) {
		t.Error("different seeds produced identical keys")
	}
	// Same seed reproduces exactly.
	a2, err := Exchange(ExchangeConfig{RawBits: 4096, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Key, a2.Key) {
		t.Error("same seed produced different keys")
	}
}

func TestEavesdropperDetected(t *testing.T) {
	// Intercept-resend induces ~25% QBER — the exchange must abort.
	_, err := Exchange(ExchangeConfig{RawBits: 8192, QBER: 0, Eavesdrop: true, Seed: 4})
	if !errors.Is(err, ErrAborted) {
		t.Errorf("err = %v, want ErrAborted", err)
	}
}

func TestHighNoiseAborts(t *testing.T) {
	_, err := Exchange(ExchangeConfig{RawBits: 8192, QBER: 0.2, Seed: 5})
	if !errors.Is(err, ErrAborted) {
		t.Errorf("err = %v, want ErrAborted", err)
	}
}

func TestBBM92FromWerner(t *testing.T) {
	// w = 0.95 → QBER 2.5%: exchange succeeds with matching estimate.
	res, err := Exchange(ExchangeConfig{Protocol: BBM92, Werner: 0.95, RawBits: 16384, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.EstimatedQBER-0.025) > 0.02 {
		t.Errorf("BBM92 QBER estimate %v, want ≈ 0.025", res.EstimatedQBER)
	}
	// w below the SKF threshold must abort.
	if _, err := Exchange(ExchangeConfig{Protocol: BBM92, Werner: 0.7, RawBits: 8192, Seed: 6}); !errors.Is(err, ErrAborted) {
		t.Errorf("low-werner err = %v, want ErrAborted", err)
	}
	if _, err := Exchange(ExchangeConfig{Protocol: BBM92, Werner: 0, Seed: 6}); err == nil {
		t.Error("Werner 0 accepted")
	}
}

func TestExchangeConfigValidation(t *testing.T) {
	if _, err := Exchange(ExchangeConfig{QBER: 0.7, Seed: 1}); err == nil {
		t.Error("QBER > 0.5 accepted")
	}
	if _, err := Exchange(ExchangeConfig{RawBits: 50, Seed: 1}); err == nil {
		t.Error("tiny exchange accepted")
	}
}

func TestKeyFractionMatchesTheory(t *testing.T) {
	// Final key length ≈ (1−2h2(e))·kept − leaked.
	res, err := Exchange(ExchangeConfig{RawBits: 32768, QBER: 0.03, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	kept := float64(res.SiftedBits) * 0.75 // quarter sampled away
	wantBits := res.SecretFraction*kept - float64(res.LeakedBits)
	gotBits := float64(len(res.Key) * 8)
	if math.Abs(gotBits-wantBits) > 16 {
		t.Errorf("final key %v bits, want ≈ %v", gotBits, wantBits)
	}
}

func TestKeyCenterLifecycle(t *testing.T) {
	kc := NewKeyCenter()
	if err := kc.Provision("c1", 1000); err != nil {
		t.Fatal(err)
	}
	if err := kc.Provision("", 1); err == nil {
		t.Error("empty client id accepted")
	}
	if err := kc.Provision("c2", -1); err == nil {
		t.Error("negative rate accepted")
	}
	if r, err := kc.Rate("c1"); err != nil || r != 1000 {
		t.Errorf("Rate = %v, %v", r, err)
	}
	if _, err := kc.Rate("ghost"); !errors.Is(err, ErrUnknownClient) {
		t.Errorf("Rate(ghost) err = %v", err)
	}

	if err := kc.Deposit("c1", []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := kc.Deposit("ghost", []byte{1}); !errors.Is(err, ErrUnknownClient) {
		t.Errorf("Deposit(ghost) err = %v", err)
	}
	if n, err := kc.Available("c1"); err != nil || n != 4 {
		t.Errorf("Available = %d, %v", n, err)
	}
	got, err := kc.Withdraw("c1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Withdraw = %v", got)
	}
	if _, err := kc.Withdraw("c1", 5); !errors.Is(err, ErrInsufficientKey) {
		t.Errorf("over-withdraw err = %v", err)
	}
	if _, err := kc.Withdraw("c1", 0); err == nil {
		t.Error("zero withdraw accepted")
	}
	// Keys are consumed exactly once.
	if n, _ := kc.Available("c1"); n != 1 {
		t.Errorf("Available after withdraw = %d, want 1", n)
	}
}

func TestKeyCenterConcurrent(t *testing.T) {
	kc := NewKeyCenter()
	if err := kc.Provision("c", 1); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = kc.Deposit("c", []byte{0xAA})
				_, _ = kc.Withdraw("c", 1)
			}
		}()
	}
	wg.Wait()
	n, err := kc.Available("c")
	if err != nil {
		t.Fatal(err)
	}
	if n < 0 || n > 1600 {
		t.Errorf("pool size %d out of range after churn", n)
	}
}

func TestProvisionFromAllocation(t *testing.T) {
	net := qnet.SURFnet()
	phi := []float64{2, 1.1, 1.1, 1.9, 0.7, 0.6}
	w, err := net.WernerFromRates(phi)
	if err != nil {
		t.Fatal(err)
	}
	kc := NewKeyCenter()
	if err := kc.ProvisionFromAllocation(net, phi, w, nil); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < net.NumRoutes(); r++ {
		ew, err := net.EndToEndWerner(r, w)
		if err != nil {
			t.Fatal(err)
		}
		want := phi[r] * qnet.SecretKeyFraction(ew)
		got, err := kc.Rate((func(i int) string { return "client-" + string(rune('1'+i)) })(r))
		if err != nil {
			t.Fatalf("route %d: %v", r, err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("route %d rate = %v, want %v", r+1, got, want)
		}
	}
	if err := kc.ProvisionFromAllocation(net, phi[:2], w, nil); err == nil {
		t.Error("short phi accepted")
	}
}

func TestRunExchangeDeposits(t *testing.T) {
	kc := NewKeyCenter()
	if err := kc.Provision("client-1", 10); err != nil {
		t.Fatal(err)
	}
	res, err := kc.RunExchange("client-1", 0.97, 8192, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Key) == 0 {
		t.Fatal("no key")
	}
	n, err := kc.Available("client-1")
	if err != nil {
		t.Fatal(err)
	}
	if n != len(res.Key) {
		t.Errorf("pool holds %d bytes, exchange produced %d", n, len(res.Key))
	}
}
