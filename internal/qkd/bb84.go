// Package qkd simulates the quantum key distribution layer of the QuHE
// system (§III-A.1): BB84 and entanglement-based BBM92 key exchange over
// noisy channels (with optional intercept-resend eavesdropping), sifting,
// QBER estimation, parity-bisection error reconciliation, SHA-256 privacy
// amplification, and a concurrent KeyCenter that provisions per-client key
// pools at the rates chosen by Stage 1 of the QuHE algorithm.
package qkd

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"quhe/internal/qnet"
)

// Protocol selects the simulated QKD protocol.
type Protocol int

const (
	// BB84 is prepare-and-measure over a depolarizing channel.
	BB84 Protocol = iota + 1
	// BBM92 is entanglement-based: both parties measure halves of Werner
	// pairs; QBER = (1−w)/2.
	BBM92
)

// AbortThreshold is the QBER above which the exchange aborts: beyond
// ~11% the BB84 asymptotic key fraction 1−2h2(e) is non-positive.
const AbortThreshold = 0.11

// ErrAborted reports a QBER above threshold (channel too noisy or an
// eavesdropper present).
var ErrAborted = errors.New("qkd: estimated QBER above abort threshold")

// ExchangeConfig parameterizes one key exchange.
type ExchangeConfig struct {
	// Protocol selects BB84 (default) or BBM92.
	Protocol Protocol
	// RawBits is the number of transmitted qubits/pairs. Default 4096.
	RawBits int
	// QBER is the intrinsic channel error rate for BB84 (ignored for
	// BBM92, which derives it from Werner).
	QBER float64
	// Werner is the end-to-end Werner parameter for BBM92.
	Werner float64
	// Eavesdrop enables an intercept-resend attacker on every qubit,
	// which adds ~25% errors on sifted bits.
	Eavesdrop bool
	// SampleFrac is the fraction of sifted bits sacrificed for QBER
	// estimation. Default 0.25.
	SampleFrac float64
	// Seed drives all randomness; 0 selects a fixed default.
	Seed int64
}

func (c ExchangeConfig) defaults() ExchangeConfig {
	if c.Protocol == 0 {
		c.Protocol = BB84
	}
	if c.RawBits <= 0 {
		c.RawBits = 4096
	}
	if c.SampleFrac <= 0 || c.SampleFrac >= 1 {
		c.SampleFrac = 0.25
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ExchangeResult reports a completed (or aborted) key exchange.
type ExchangeResult struct {
	// Key is the final shared secret (nil if aborted). Both parties hold
	// identical copies — the simulation verifies this.
	Key []byte
	// SiftedBits is the number of basis-matched bits.
	SiftedBits int
	// EstimatedQBER is the sampled error estimate; TrueQBER the actual
	// error rate on the sifted key (known to the simulator only).
	EstimatedQBER float64
	TrueQBER      float64
	// LeakedBits counts reconciliation parity disclosures, subtracted
	// during privacy amplification.
	LeakedBits int
	// SecretFraction is 1−h2(e): the fraction remaining after removing
	// Eve's channel information. The reconciliation cost is charged
	// separately through LeakedBits (together they realize the paper's
	// asymptotic 1−2h2(e) net rate, with the EC term measured rather
	// than bounded).
	SecretFraction float64
}

// Exchange runs one simulated key exchange between Alice and Bob.
func Exchange(cfg ExchangeConfig) (ExchangeResult, error) {
	c := cfg.defaults()
	var res ExchangeResult
	rng := rand.New(rand.NewSource(c.Seed))

	qber := c.QBER
	if c.Protocol == BBM92 {
		if c.Werner <= 0 || c.Werner > 1 {
			return res, fmt.Errorf("qkd: BBM92 requires Werner in (0,1], got %g", c.Werner)
		}
		qber = qnet.QBER(c.Werner)
	}
	if qber < 0 || qber > 0.5 {
		return res, fmt.Errorf("qkd: QBER %g outside [0, 0.5]", qber)
	}

	// Quantum phase: random bits/bases; Bob keeps basis-matched ones.
	var aliceSift, bobSift []byte
	for i := 0; i < c.RawBits; i++ {
		bit := byte(rng.Intn(2))
		aliceBasis := rng.Intn(2)

		transmitted := bit
		basisKnownToEve := false
		if c.Eavesdrop {
			// Intercept-resend: Eve measures in a random basis and
			// re-prepares. Wrong basis (half the time) randomizes Bob's
			// result in Alice's basis.
			eveBasis := rng.Intn(2)
			basisKnownToEve = eveBasis == aliceBasis
			if !basisKnownToEve {
				transmitted = byte(rng.Intn(2))
			}
		}

		bobBasis := rng.Intn(2)
		if bobBasis != aliceBasis {
			continue // sifted away
		}
		received := transmitted
		if c.Eavesdrop && !basisKnownToEve {
			// Bob measures Eve's wrong-basis state: random outcome.
			received = byte(rng.Intn(2))
		}
		// Channel noise.
		if rng.Float64() < qber {
			received ^= 1
		}
		aliceSift = append(aliceSift, bit)
		bobSift = append(bobSift, received)
	}
	res.SiftedBits = len(aliceSift)
	if res.SiftedBits < 64 {
		return res, fmt.Errorf("qkd: only %d sifted bits, need ≥ 64", res.SiftedBits)
	}

	// Parameter estimation: sacrifice a random sample.
	sample := rng.Perm(res.SiftedBits)[:int(c.SampleFrac*float64(res.SiftedBits))]
	inSample := make(map[int]bool, len(sample))
	errs := 0
	for _, idx := range sample {
		inSample[idx] = true
		if aliceSift[idx] != bobSift[idx] {
			errs++
		}
	}
	res.EstimatedQBER = float64(errs) / float64(len(sample))

	var aliceKey, bobKey []byte
	for i := 0; i < res.SiftedBits; i++ {
		if !inSample[i] {
			aliceKey = append(aliceKey, aliceSift[i])
			bobKey = append(bobKey, bobSift[i])
		}
	}
	trueErrs := 0
	for i := range aliceKey {
		if aliceKey[i] != bobKey[i] {
			trueErrs++
		}
	}
	res.TrueQBER = float64(trueErrs) / float64(len(aliceKey))

	if res.EstimatedQBER > AbortThreshold {
		return res, fmt.Errorf("%w: estimated %.3f", ErrAborted, res.EstimatedQBER)
	}

	// Reconciliation: Bob corrects toward Alice via parity bisection.
	res.LeakedBits = reconcile(aliceKey, bobKey, math.Max(res.EstimatedQBER, 0.01), rng)

	// Privacy amplification: compress by Eve's channel information h2(e)
	// and the measured reconciliation leakage.
	res.SecretFraction = 1 - qnet.BinaryEntropy(math.Min(math.Max(res.EstimatedQBER, res.TrueQBER), 0.5))
	if res.SecretFraction <= 0 {
		return res, fmt.Errorf("%w: secret fraction non-positive", ErrAborted)
	}
	finalBits := int(res.SecretFraction*float64(len(aliceKey))) - res.LeakedBits
	if finalBits < 64 {
		return res, fmt.Errorf("%w: only %d final bits", ErrAborted, finalBits)
	}
	aliceFinal := amplify(aliceKey, finalBits)
	bobFinal := amplify(bobKey, finalBits)
	for i := range aliceFinal {
		if aliceFinal[i] != bobFinal[i] {
			return res, errors.New("qkd: reconciliation failed — final keys disagree")
		}
	}
	res.Key = aliceFinal
	return res, nil
}

// reconcile runs cascade-style parity bisection passes, flipping Bob's
// erroneous bits until his key matches Alice's. It returns the number of
// parity bits disclosed. alice is read-only; bob is corrected in place.
func reconcile(alice, bob []byte, qber float64, rng *rand.Rand) (leaked int) {
	n := len(bob)
	blockLen := int(0.73 / qber)
	if blockLen < 4 {
		blockLen = 4
	}
	if blockLen > n {
		blockLen = n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// A block holding an even number of errors has matching parity and is
	// invisible within a pass; each reshuffle splits such pairs with high
	// probability, so enough passes converge to equality essentially
	// always (Exchange still verifies the final keys).
	for pass := 0; pass < 40; pass++ {
		if pass > 0 {
			rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
			if pass <= 3 && blockLen < n/2 {
				blockLen *= 2
			}
		}
		for start := 0; start < n; start += blockLen {
			end := start + blockLen
			if end > n {
				end = n
			}
			leaked += bisectFix(alice, bob, order[start:end])
		}
		// Early exit when already equal.
		if equalBits(alice, bob) {
			break
		}
	}
	return leaked
}

// bisectFix compares block parity and binary-searches one error when the
// parities differ. Returns parity bits disclosed.
func bisectFix(alice, bob []byte, idx []int) (leaked int) {
	parity := func(key []byte, ids []int) byte {
		var p byte
		for _, i := range ids {
			p ^= key[i]
		}
		return p
	}
	leaked = 1
	if parity(alice, idx) == parity(bob, idx) {
		return leaked
	}
	for len(idx) > 1 {
		mid := len(idx) / 2
		leaked++
		if parity(alice, idx[:mid]) != parity(bob, idx[:mid]) {
			idx = idx[:mid]
		} else {
			idx = idx[mid:]
		}
	}
	bob[idx[0]] ^= 1
	return leaked
}

func equalBits(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// amplify hashes the reconciled bit string down to outBits bits of final
// key (SHA-256 in counter mode as a randomness extractor).
func amplify(bits []byte, outBits int) []byte {
	packed := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b == 1 {
			packed[i/8] |= 1 << uint(i%8)
		}
	}
	outBytes := (outBits + 7) / 8
	out := make([]byte, 0, outBytes)
	var counter [8]byte
	for block := 0; len(out) < outBytes; block++ {
		binary.LittleEndian.PutUint64(counter[:], uint64(block))
		h := sha256.New()
		h.Write(counter[:])
		h.Write(packed)
		out = h.Sum(out)
	}
	out = out[:outBytes]
	// Mask unused trailing bits for an exact bit count.
	if rem := outBits % 8; rem != 0 {
		out[outBytes-1] &= byte(1<<uint(rem)) - 1
	}
	return out
}
