package qkd

import (
	"sort"
	"sync"
)

// Withdrawal causes: why a session spent QKD key material. The paper's
// utility-cost objective prices every key bit (U_qkd); the ledger
// attributes the measured spend to the decision that caused it so cost
// per session/route/cause is an observable, not a guess.
const (
	// CauseSetup is the initial withdrawal backing a session's key
	// ceremony at dial time.
	CauseSetup = "setup"
	// CauseBudgetRekey is a rekey forced or advised by the server's
	// per-session key byte budget running out.
	CauseBudgetRekey = "budget-rekey"
	// CauseReplan is an explicit rotation requested by the caller or
	// control plane outside budget pressure.
	CauseReplan = "replan"
	// CauseResumeRotation is the first rotation after a session resume,
	// refreshing the resume credential that survived the old transport.
	CauseResumeRotation = "resume-rotation"
	// CauseUnattributed covers withdrawals that reached the key centre
	// without attribution (plain Withdraw with a ledger attached). The
	// ledger still counts them, so its totals always reconcile with the
	// key centre's flow counters exactly.
	CauseUnattributed = "unattributed"
)

// Causes returns every ledger cause label — the bounded domain for
// metric labels.
func Causes() []string {
	return []string{CauseSetup, CauseBudgetRekey, CauseReplan, CauseResumeRotation, CauseUnattributed}
}

// Attribution labels one withdrawal with the decision that spent the key
// material. Route and Profile may be empty when unknown at spend time.
type Attribution struct {
	Route   string
	Profile string
	Cause   string
}

// LedgerEntry is one attributed withdrawal.
type LedgerEntry struct {
	Seq     int64  `json:"seq"`
	Session string `json:"session"`
	Route   string `json:"route,omitempty"`
	Profile string `json:"profile,omitempty"`
	Cause   string `json:"cause"`
	Bytes   int64  `json:"bytes"`
}

// CauseTotal aggregates one cause's spend.
type CauseTotal struct {
	Cause       string `json:"cause"`
	Withdrawals int64  `json:"withdrawals"`
	Bytes       int64  `json:"bytes"`
}

// SessionTotal aggregates one session's spend with its per-cause split.
type SessionTotal struct {
	Session     string       `json:"session"`
	Route       string       `json:"route,omitempty"`
	Profile     string       `json:"profile,omitempty"`
	Withdrawals int64        `json:"withdrawals"`
	Bytes       int64        `json:"bytes"`
	ByCause     []CauseTotal `json:"by_cause"`
}

// LedgerSnapshot is the /debug/keyledger payload: totals, per-cause and
// per-session aggregates, and the newest raw entries.
type LedgerSnapshot struct {
	Withdrawals int64          `json:"withdrawals"`
	Bytes       int64          `json:"bytes"`
	ByCause     []CauseTotal   `json:"by_cause"`
	Sessions    []SessionTotal `json:"sessions"`
	Recent      []LedgerEntry  `json:"recent"`
}

// ledgerRecent bounds the raw-entry ring kept for the snapshot's Recent
// view; aggregates are unaffected by the bound.
const ledgerRecent = 1024

// ledgerMaxSessions bounds the per-session aggregate map; spend by
// sessions past the cap still lands in the totals and per-cause rows
// (sessions are unbounded in principle, the ledger must not be).
const ledgerMaxSessions = 4096

// Ledger is the QKD key-flow ledger: every withdrawal that flows through
// an attached KeyCenter is recorded with its attribution, keeping exact
// running totals (they reconcile with KeyCenter.Counters by
// construction), bounded per-cause and per-session aggregates, and a
// ring of recent raw entries. Safe for concurrent use.
type Ledger struct {
	mu          sync.Mutex
	seq         int64
	withdrawals int64
	bytes       int64
	byCause     map[string]*CauseTotal
	sessions    map[string]*sessionAgg
	recent      []LedgerEntry
	next        int
	full        bool
}

type sessionAgg struct {
	route, profile      string
	withdrawals, bytesN int64
	byCause             map[string]*CauseTotal
}

// NewLedger builds an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		byCause:  make(map[string]*CauseTotal),
		sessions: make(map[string]*sessionAgg),
		recent:   make([]LedgerEntry, ledgerRecent),
	}
}

// Record enters one successful withdrawal. An empty cause is recorded as
// CauseUnattributed.
func (l *Ledger) Record(session string, bytes int, attr Attribution) {
	if attr.Cause == "" {
		attr.Cause = CauseUnattributed
	}
	l.mu.Lock()
	l.seq++
	l.withdrawals++
	l.bytes += int64(bytes)
	ct := l.byCause[attr.Cause]
	if ct == nil {
		ct = &CauseTotal{Cause: attr.Cause}
		l.byCause[attr.Cause] = ct
	}
	ct.Withdrawals++
	ct.Bytes += int64(bytes)
	sa := l.sessions[session]
	if sa == nil && len(l.sessions) < ledgerMaxSessions {
		sa = &sessionAgg{byCause: make(map[string]*CauseTotal)}
		l.sessions[session] = sa
	}
	if sa != nil {
		if attr.Route != "" {
			sa.route = attr.Route
		}
		if attr.Profile != "" {
			sa.profile = attr.Profile
		}
		sa.withdrawals++
		sa.bytesN += int64(bytes)
		sct := sa.byCause[attr.Cause]
		if sct == nil {
			sct = &CauseTotal{Cause: attr.Cause}
			sa.byCause[attr.Cause] = sct
		}
		sct.Withdrawals++
		sct.Bytes += int64(bytes)
	}
	if l.next == len(l.recent) {
		l.next, l.full = 0, true
	}
	l.recent[l.next] = LedgerEntry{
		Seq: l.seq, Session: session,
		Route: attr.Route, Profile: attr.Profile, Cause: attr.Cause,
		Bytes: int64(bytes),
	}
	l.next++
	l.mu.Unlock()
}

// Totals returns the cumulative withdrawal count and bytes across every
// cause — the reconciliation hook against KeyCenter.Counters.
func (l *Ledger) Totals() (withdrawals, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.withdrawals, l.bytes
}

// CauseBytes returns the cumulative bytes withdrawn under one cause.
func (l *Ledger) CauseBytes(cause string) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if ct := l.byCause[cause]; ct != nil {
		return ct.Bytes
	}
	return 0
}

// CauseWithdrawals returns the cumulative withdrawal count under one
// cause.
func (l *Ledger) CauseWithdrawals(cause string) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if ct := l.byCause[cause]; ct != nil {
		return ct.Withdrawals
	}
	return 0
}

// Snapshot captures the ledger for the /debug/keyledger view: per-cause
// rows sorted by spend, per-session rows sorted by session ID, and the
// newest raw entries oldest-first.
func (l *Ledger) Snapshot() LedgerSnapshot {
	l.mu.Lock()
	snap := LedgerSnapshot{Withdrawals: l.withdrawals, Bytes: l.bytes}
	for _, ct := range l.byCause {
		snap.ByCause = append(snap.ByCause, *ct)
	}
	for id, sa := range l.sessions {
		st := SessionTotal{
			Session: id, Route: sa.route, Profile: sa.profile,
			Withdrawals: sa.withdrawals, Bytes: sa.bytesN,
		}
		for _, ct := range sa.byCause {
			st.ByCause = append(st.ByCause, *ct)
		}
		sort.Slice(st.ByCause, func(i, j int) bool { return st.ByCause[i].Bytes > st.ByCause[j].Bytes })
		snap.Sessions = append(snap.Sessions, st)
	}
	n := l.next
	if l.full {
		n = len(l.recent)
	}
	snap.Recent = make([]LedgerEntry, n)
	if l.full {
		copy(snap.Recent, l.recent[l.next:])
		copy(snap.Recent[len(l.recent)-l.next:], l.recent[:l.next])
	} else {
		copy(snap.Recent, l.recent[:n])
	}
	l.mu.Unlock()
	sort.Slice(snap.ByCause, func(i, j int) bool { return snap.ByCause[i].Bytes > snap.ByCause[j].Bytes })
	sort.Slice(snap.Sessions, func(i, j int) bool { return snap.Sessions[i].Session < snap.Sessions[j].Session })
	return snap
}
