package qkd

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"quhe/internal/qnet"
)

// ErrUnknownClient is returned for operations on unprovisioned clients.
var ErrUnknownClient = errors.New("qkd: unknown client")

// ErrInsufficientKey is returned when a pool cannot satisfy a withdrawal.
var ErrInsufficientKey = errors.New("qkd: insufficient key material")

// KeyCenter manages per-client symmetric key pools, standing in for the
// paper's central key centre (Hilversum in the SURFnet topology). QKD
// exchanges deposit key material; clients withdraw it for symmetric
// encryption. Safe for concurrent use.
type KeyCenter struct {
	mu    sync.Mutex
	pools map[string]*keyPool

	// Flow counters, atomically maintained outside the pool mutex's
	// critical paths so observability scrapes never contend with
	// withdrawals. Exposed through Counters.
	deposits          atomic.Int64
	depositedBytes    atomic.Int64
	withdrawals       atomic.Int64
	withdrawnBytes    atomic.Int64
	failedWithdrawals atomic.Int64

	// ledger, when attached, receives every successful withdrawal with
	// its attribution (CauseUnattributed for plain Withdraw), so ledger
	// totals reconcile with the flow counters exactly.
	ledger atomic.Pointer[Ledger]
}

type keyPool struct {
	buf []byte
	// ratePerSec is the provisioned secret-key rate in bits/s
	// (informational; deposits are driven by the simulation).
	ratePerSec float64
}

// NewKeyCenter creates an empty key centre.
func NewKeyCenter() *KeyCenter {
	return &KeyCenter{pools: make(map[string]*keyPool)}
}

// Provision registers a client with a secret-key rate in bits/second.
// Re-provisioning updates the rate and keeps buffered material.
func (kc *KeyCenter) Provision(clientID string, ratePerSec float64) error {
	if clientID == "" {
		return errors.New("qkd: empty client id")
	}
	if ratePerSec < 0 {
		return fmt.Errorf("qkd: negative rate %g", ratePerSec)
	}
	kc.mu.Lock()
	defer kc.mu.Unlock()
	if p, ok := kc.pools[clientID]; ok {
		p.ratePerSec = ratePerSec
		return nil
	}
	kc.pools[clientID] = &keyPool{ratePerSec: ratePerSec}
	return nil
}

// Rate returns the provisioned secret-key rate for a client.
func (kc *KeyCenter) Rate(clientID string) (float64, error) {
	kc.mu.Lock()
	defer kc.mu.Unlock()
	p, ok := kc.pools[clientID]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownClient, clientID)
	}
	return p.ratePerSec, nil
}

// Deposit adds key material to a client's pool (called after a successful
// Exchange).
func (kc *KeyCenter) Deposit(clientID string, key []byte) error {
	kc.mu.Lock()
	defer kc.mu.Unlock()
	p, ok := kc.pools[clientID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownClient, clientID)
	}
	p.buf = append(p.buf, key...)
	kc.deposits.Add(1)
	kc.depositedBytes.Add(int64(len(key)))
	return nil
}

// Available returns the buffered key bytes for a client.
func (kc *KeyCenter) Available(clientID string) (int, error) {
	kc.mu.Lock()
	defer kc.mu.Unlock()
	p, ok := kc.pools[clientID]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownClient, clientID)
	}
	return len(p.buf), nil
}

// Withdraw removes and returns n key bytes for a client, failing without
// side effects when the pool is short (keys are never reused). With a
// ledger attached the spend is recorded as CauseUnattributed; callers
// that know why they are spending should use WithdrawAttributed.
func (kc *KeyCenter) Withdraw(clientID string, n int) ([]byte, error) {
	return kc.WithdrawAttributed(clientID, n, Attribution{})
}

// WithdrawAttributed is Withdraw plus attribution: the spend lands in
// the attached ledger under the given session/route/profile/cause.
// Failed withdrawals are never ledgered (no key material moved).
func (kc *KeyCenter) WithdrawAttributed(clientID string, n int, attr Attribution) ([]byte, error) {
	if n <= 0 {
		return nil, fmt.Errorf("qkd: withdrawal of %d bytes", n)
	}
	kc.mu.Lock()
	p, ok := kc.pools[clientID]
	if !ok {
		kc.mu.Unlock()
		kc.failedWithdrawals.Add(1)
		return nil, fmt.Errorf("%w: %q", ErrUnknownClient, clientID)
	}
	if len(p.buf) < n {
		have := len(p.buf)
		kc.mu.Unlock()
		kc.failedWithdrawals.Add(1)
		return nil, fmt.Errorf("%w: want %d bytes, have %d", ErrInsufficientKey, n, have)
	}
	out := make([]byte, n)
	copy(out, p.buf[:n])
	p.buf = p.buf[n:]
	kc.mu.Unlock()
	kc.withdrawals.Add(1)
	kc.withdrawnBytes.Add(int64(n))
	if l := kc.ledger.Load(); l != nil {
		l.Record(clientID, n, attr)
	}
	return out, nil
}

// AttachLedger points the key centre's withdrawal flow at a key-flow
// ledger; every subsequent successful withdrawal is recorded there. A
// nil ledger detaches.
func (kc *KeyCenter) AttachLedger(l *Ledger) { kc.ledger.Store(l) }

// KeyLedger returns the attached ledger, or nil.
func (kc *KeyCenter) KeyLedger() *Ledger { return kc.ledger.Load() }

// FlowCounters is the key centre's cumulative deposit/withdrawal flow —
// the counter-shaped complement to PoolStats' point-in-time stock.
type FlowCounters struct {
	Deposits          int64
	DepositedBytes    int64
	Withdrawals       int64
	WithdrawnBytes    int64
	FailedWithdrawals int64
}

// Counters snapshots the cumulative flow counters.
func (kc *KeyCenter) Counters() FlowCounters {
	return FlowCounters{
		Deposits:          kc.deposits.Load(),
		DepositedBytes:    kc.depositedBytes.Load(),
		Withdrawals:       kc.withdrawals.Load(),
		WithdrawnBytes:    kc.withdrawnBytes.Load(),
		FailedWithdrawals: kc.failedWithdrawals.Load(),
	}
}

// PoolStat is a point-in-time snapshot of one client's key pool.
type PoolStat struct {
	// ClientID names the pool.
	ClientID string
	// AvailableBytes is the buffered key material.
	AvailableBytes int
	// RatePerSec is the provisioned secret-key rate in bits/s.
	RatePerSec float64
}

// PoolStats snapshots every client pool's stock and provisioned rate — the
// key-plane telemetry the control plane folds into its resource plans.
func (kc *KeyCenter) PoolStats() []PoolStat {
	kc.mu.Lock()
	defer kc.mu.Unlock()
	out := make([]PoolStat, 0, len(kc.pools))
	for id, p := range kc.pools {
		out = append(out, PoolStat{ClientID: id, AvailableBytes: len(p.buf), RatePerSec: p.ratePerSec})
	}
	return out
}

// ProvisionFromAllocation registers every route's client with the
// secret-key rate its Stage-1 allocation sustains:
//
//	rate_n = φ_n · F_skf(̟_n)   [secret pairs ≈ bits per second],
//
// tying the key centre directly to the QuHE optimizer's output.
func (kc *KeyCenter) ProvisionFromAllocation(net *qnet.Network, phi, w []float64, clientID func(route int) string) error {
	if clientID == nil {
		clientID = func(route int) string { return fmt.Sprintf("client-%d", route+1) }
	}
	if len(phi) != net.NumRoutes() {
		return fmt.Errorf("qkd: %d rates for %d routes", len(phi), net.NumRoutes())
	}
	for r := 0; r < net.NumRoutes(); r++ {
		ew, err := net.EndToEndWerner(r, w)
		if err != nil {
			return err
		}
		rate := phi[r] * qnet.SecretKeyFraction(ew)
		if err := kc.Provision(clientID(r), rate); err != nil {
			return err
		}
	}
	return nil
}

// RunExchange performs a simulated BBM92 exchange for a client over a
// route with the given end-to-end Werner parameter and deposits the result.
func (kc *KeyCenter) RunExchange(clientID string, werner float64, rawBits int, seed int64) (ExchangeResult, error) {
	res, err := Exchange(ExchangeConfig{
		Protocol: BBM92,
		Werner:   werner,
		RawBits:  rawBits,
		Seed:     seed,
	})
	if err != nil {
		return res, err
	}
	if err := kc.Deposit(clientID, res.Key); err != nil {
		return res, err
	}
	return res, nil
}
