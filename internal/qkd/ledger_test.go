package qkd

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestLedgerRecordAndSnapshot(t *testing.T) {
	l := NewLedger()
	l.Record("s1", 32, Attribution{Route: "r1", Profile: "default", Cause: CauseSetup})
	l.Record("s1", 32, Attribution{Route: "r1", Profile: "default", Cause: CauseBudgetRekey})
	l.Record("s2", 16, Attribution{Route: "r2", Profile: "high", Cause: CauseReplan})
	l.Record("s2", 8, Attribution{}) // empty cause → unattributed

	w, b := l.Totals()
	if w != 4 || b != 88 {
		t.Fatalf("totals = %d withdrawals / %d bytes, want 4/88", w, b)
	}
	if got := l.CauseBytes(CauseSetup); got != 32 {
		t.Errorf("setup bytes = %d, want 32", got)
	}
	if got := l.CauseWithdrawals(CauseUnattributed); got != 1 {
		t.Errorf("unattributed withdrawals = %d, want 1", got)
	}

	snap := l.Snapshot()
	if snap.Withdrawals != 4 || snap.Bytes != 88 {
		t.Errorf("snapshot totals %d/%d", snap.Withdrawals, snap.Bytes)
	}
	if len(snap.Sessions) != 2 {
		t.Errorf("snapshot sessions = %d, want 2", len(snap.Sessions))
	}
	if len(snap.Recent) != 4 {
		t.Errorf("snapshot recent = %d, want 4", len(snap.Recent))
	}
	// Recent entries are oldest-first with monotonic sequence numbers.
	for i := 1; i < len(snap.Recent); i++ {
		if snap.Recent[i].Seq <= snap.Recent[i-1].Seq {
			t.Fatalf("recent not seq-ordered at %d", i)
		}
	}
	var byCause int64
	for _, c := range snap.ByCause {
		byCause += c.Bytes
	}
	if byCause != snap.Bytes {
		t.Errorf("per-cause bytes %d do not cover total %d", byCause, snap.Bytes)
	}
}

// TestLedgerReconciliation is the reconciliation property: under a
// seeded random mix of attributed withdrawals, plain withdrawals and
// failures across concurrent sessions, the ledger's totals must equal
// the key centre's flow counters exactly — every successful withdrawal
// ledgered once, failures never.
func TestLedgerReconciliation(t *testing.T) {
	kc := NewKeyCenter()
	l := NewLedger()
	kc.AttachLedger(l)

	const sessions = 8
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("s%d", i)
		if err := kc.Provision(id, 1000); err != nil {
			t.Fatal(err)
		}
		// Underfund deliberately so some withdrawals fail.
		if err := kc.Deposit(id, make([]byte, 500+i*100)); err != nil {
			t.Fatal(err)
		}
	}

	causes := Causes()
	var wg sync.WaitGroup
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			id := fmt.Sprintf("s%d", g)
			for op := 0; op < 200; op++ {
				n := 1 + rng.Intn(64)
				switch rng.Intn(3) {
				case 0:
					_, _ = kc.Withdraw(id, n)
				case 1:
					_, _ = kc.WithdrawAttributed(id, n, Attribution{
						Route:   fmt.Sprintf("r%d", g),
						Profile: "default",
						Cause:   causes[rng.Intn(len(causes))],
					})
				case 2:
					_, _ = kc.WithdrawAttributed("unknown", n, Attribution{Cause: CauseSetup})
				}
			}
		}(g)
	}
	wg.Wait()

	fc := kc.Counters()
	w, b := l.Totals()
	if w != fc.Withdrawals || b != fc.WithdrawnBytes {
		t.Fatalf("ledger %d withdrawals / %d bytes, key centre %d/%d — must reconcile exactly",
			w, b, fc.Withdrawals, fc.WithdrawnBytes)
	}
	if fc.FailedWithdrawals == 0 {
		t.Fatal("test never exercised failed withdrawals; weaken funding")
	}

	// Per-cause totals cover the grand total with no residue.
	var causeW, causeB int64
	for _, c := range Causes() {
		causeW += l.CauseWithdrawals(c)
		causeB += l.CauseBytes(c)
	}
	if causeW != w || causeB != b {
		t.Fatalf("cause totals %d/%d do not cover ledger totals %d/%d", causeW, causeB, w, b)
	}
}

func TestLedgerBounded(t *testing.T) {
	l := NewLedger()
	for i := 0; i < ledgerMaxSessions+100; i++ {
		l.Record(fmt.Sprintf("s%d", i), 1, Attribution{Cause: CauseSetup})
	}
	snap := l.Snapshot()
	if len(snap.Sessions) > ledgerMaxSessions {
		t.Errorf("session map grew to %d, cap is %d", len(snap.Sessions), ledgerMaxSessions)
	}
	if len(snap.Recent) != ledgerRecent {
		t.Errorf("recent ring holds %d, want %d", len(snap.Recent), ledgerRecent)
	}
	// Totals still count everything, even past the bounded views.
	if snap.Withdrawals != int64(ledgerMaxSessions+100) {
		t.Errorf("totals dropped entries: %d", snap.Withdrawals)
	}
}

func TestWithdrawUnattributedDefault(t *testing.T) {
	kc := NewKeyCenter()
	l := NewLedger()
	kc.AttachLedger(l)
	if err := kc.Provision("c", 100); err != nil {
		t.Fatal(err)
	}
	if err := kc.Deposit("c", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := kc.Withdraw("c", 32); err != nil {
		t.Fatal(err)
	}
	if got := l.CauseWithdrawals(CauseUnattributed); got != 1 {
		t.Errorf("plain Withdraw ledgered as %d unattributed, want 1", got)
	}
}
