// Package chacha20 implements the ChaCha20 stream cipher of RFC 8439 from
// scratch (stdlib only). The QuHE system uses it as the client-side
// symmetric cipher: data is encrypted under a QKD-distributed key before
// upload (§III-A.2), and the cipher also seeds the HE-friendly transciphering
// keystream (internal/transcipher).
package chacha20

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

const (
	// KeySize is the ChaCha20 key length in bytes.
	KeySize = 32
	// NonceSize is the RFC 8439 nonce length in bytes.
	NonceSize = 12
	// BlockSize is the keystream block length in bytes.
	BlockSize = 64
)

// sigma is the "expand 32-byte k" constant.
var sigma = [4]uint32{0x61707865, 0x3320646e, 0x79622d32, 0x6b206574}

// Cipher is a ChaCha20 instance bound to one (key, nonce) pair. It
// maintains a running block counter, so successive XORKeyStream calls
// continue the keystream. A (key, nonce) pair must never be reused across
// different messages.
type Cipher struct {
	state   [16]uint32 // initial state with current counter at state[12]
	buf     [BlockSize]byte
	bufUsed int // bytes of buf already consumed (BlockSize = empty)
}

// New creates a Cipher with the given 32-byte key, 12-byte nonce and
// initial block counter (RFC 8439 uses counter 1 for AEAD payloads and 0
// for plain keystream use; either is valid here).
func New(key, nonce []byte, counter uint32) (*Cipher, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("chacha20: key must be %d bytes, got %d", KeySize, len(key))
	}
	if len(nonce) != NonceSize {
		return nil, fmt.Errorf("chacha20: nonce must be %d bytes, got %d", NonceSize, len(nonce))
	}
	c := &Cipher{bufUsed: BlockSize}
	copy(c.state[:4], sigma[:])
	for i := 0; i < 8; i++ {
		c.state[4+i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	c.state[12] = counter
	for i := 0; i < 3; i++ {
		c.state[13+i] = binary.LittleEndian.Uint32(nonce[4*i:])
	}
	return c, nil
}

// quarterRound is the ChaCha quarter round on four state words.
func quarterRound(a, b, c, d uint32) (uint32, uint32, uint32, uint32) {
	a += b
	d ^= a
	d = bits.RotateLeft32(d, 16)
	c += d
	b ^= c
	b = bits.RotateLeft32(b, 12)
	a += b
	d ^= a
	d = bits.RotateLeft32(d, 8)
	c += d
	b ^= c
	b = bits.RotateLeft32(b, 7)
	return a, b, c, d
}

// block computes the keystream block for the current counter into c.buf.
func (c *Cipher) block() {
	var x [16]uint32
	copy(x[:], c.state[:])
	for round := 0; round < 10; round++ {
		// Column rounds.
		x[0], x[4], x[8], x[12] = quarterRound(x[0], x[4], x[8], x[12])
		x[1], x[5], x[9], x[13] = quarterRound(x[1], x[5], x[9], x[13])
		x[2], x[6], x[10], x[14] = quarterRound(x[2], x[6], x[10], x[14])
		x[3], x[7], x[11], x[15] = quarterRound(x[3], x[7], x[11], x[15])
		// Diagonal rounds.
		x[0], x[5], x[10], x[15] = quarterRound(x[0], x[5], x[10], x[15])
		x[1], x[6], x[11], x[12] = quarterRound(x[1], x[6], x[11], x[12])
		x[2], x[7], x[8], x[13] = quarterRound(x[2], x[7], x[8], x[13])
		x[3], x[4], x[9], x[14] = quarterRound(x[3], x[4], x[9], x[14])
	}
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(c.buf[4*i:], x[i]+c.state[i])
	}
	c.state[12]++ // advance the block counter
	c.bufUsed = 0
}

// XORKeyStream XORs src with the keystream into dst, which must be at least
// as long as src and may alias it. It panics on a short dst (programmer
// error, matching crypto/cipher.Stream semantics).
func (c *Cipher) XORKeyStream(dst, src []byte) {
	if len(dst) < len(src) {
		panic("chacha20: output smaller than input")
	}
	for len(src) > 0 {
		if c.bufUsed == BlockSize {
			c.block()
		}
		n := min(len(src), BlockSize-c.bufUsed)
		for i := 0; i < n; i++ {
			dst[i] = src[i] ^ c.buf[c.bufUsed+i]
		}
		c.bufUsed += n
		src = src[n:]
		dst = dst[n:]
	}
}

// Keystream fills dst with raw keystream bytes (i.e. the encryption of an
// all-zero message).
func (c *Cipher) Keystream(dst []byte) {
	for i := range dst {
		dst[i] = 0
	}
	c.XORKeyStream(dst, dst)
}

// Seal encrypts the message with a fresh single-shot cipher; it is a
// convenience for one-message-per-nonce usage.
func Seal(key, nonce, msg []byte) ([]byte, error) {
	c, err := New(key, nonce, 1)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(msg))
	c.XORKeyStream(out, msg)
	return out, nil
}

// Open decrypts a Seal output (ChaCha20 is an involution under the same
// key/nonce/counter).
func Open(key, nonce, ct []byte) ([]byte, error) {
	return Seal(key, nonce, ct)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
