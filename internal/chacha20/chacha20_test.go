package chacha20

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(strings.ReplaceAll(s, " ", ""))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRFC8439Block checks the block function against RFC 8439 §2.3.2.
func TestRFC8439Block(t *testing.T) {
	key := mustHex(t, "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
	nonce := mustHex(t, "000000090000004a00000000")
	c, err := New(key, nonce, 1)
	if err != nil {
		t.Fatal(err)
	}
	ks := make([]byte, 64)
	c.Keystream(ks)
	want := mustHex(t,
		"10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"+
			"d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e")
	if !bytes.Equal(ks, want) {
		t.Errorf("block mismatch\n got %x\nwant %x", ks, want)
	}
}

// TestRFC8439Encryption checks the full encryption vector of RFC 8439 §2.4.2.
func TestRFC8439Encryption(t *testing.T) {
	key := mustHex(t, "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
	nonce := mustHex(t, "000000000000004a00000000")
	plaintext := []byte("Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.")
	ct, err := Seal(key, nonce, plaintext)
	if err != nil {
		t.Fatal(err)
	}
	want := mustHex(t,
		"6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"+
			"f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"+
			"07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"+
			"5af90bbf74a35be6b40b8eedf2785e42874d")
	if !bytes.Equal(ct, want) {
		t.Errorf("ciphertext mismatch\n got %x\nwant %x", ct, want)
	}
	// Round trip.
	pt, err := Open(key, nonce, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, plaintext) {
		t.Error("Open did not invert Seal")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(make([]byte, 31), make([]byte, NonceSize), 0); err == nil {
		t.Error("short key accepted")
	}
	if _, err := New(make([]byte, KeySize), make([]byte, 11), 0); err == nil {
		t.Error("short nonce accepted")
	}
}

func TestStreamingMatchesOneShot(t *testing.T) {
	key := make([]byte, KeySize)
	nonce := make([]byte, NonceSize)
	for i := range key {
		key[i] = byte(i)
	}
	msg := make([]byte, 300)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	oneShot, err := Seal(key, nonce, msg)
	if err != nil {
		t.Fatal(err)
	}
	// Same encryption in odd-sized chunks (crossing block boundaries).
	c, err := New(key, nonce, 1)
	if err != nil {
		t.Fatal(err)
	}
	streamed := make([]byte, len(msg))
	for _, chunk := range []struct{ lo, hi int }{{0, 1}, {1, 63}, {63, 64}, {64, 129}, {129, 300}} {
		c.XORKeyStream(streamed[chunk.lo:chunk.hi], msg[chunk.lo:chunk.hi])
	}
	if !bytes.Equal(streamed, oneShot) {
		t.Error("chunked keystream diverges from one-shot")
	}
}

func TestCounterAdvances(t *testing.T) {
	key := make([]byte, KeySize)
	nonce := make([]byte, NonceSize)
	c, err := New(key, nonce, 0)
	if err != nil {
		t.Fatal(err)
	}
	b1 := make([]byte, BlockSize)
	b2 := make([]byte, BlockSize)
	c.Keystream(b1)
	c.Keystream(b2)
	if bytes.Equal(b1, b2) {
		t.Error("consecutive blocks identical: counter not advancing")
	}
}

func TestDifferentCountersDiffer(t *testing.T) {
	key := make([]byte, KeySize)
	nonce := make([]byte, NonceSize)
	c0, err := New(key, nonce, 0)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := New(key, nonce, 1)
	if err != nil {
		t.Fatal(err)
	}
	b0 := make([]byte, BlockSize)
	b1 := make([]byte, BlockSize)
	c0.Keystream(b0) // counter 0
	c1.Keystream(b1) // counter 1
	if bytes.Equal(b0, b1) {
		t.Error("blocks at different counters identical")
	}
	// c0's next block (counter 1) must equal c1's first.
	c0.Keystream(b0)
	if !bytes.Equal(b0, b1) {
		t.Error("keystream not continuous across counters")
	}
}

func TestXORKeyStreamShortDstPanics(t *testing.T) {
	key := make([]byte, KeySize)
	nonce := make([]byte, NonceSize)
	c, err := New(key, nonce, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("short dst did not panic")
		}
	}()
	c.XORKeyStream(make([]byte, 1), make([]byte, 2))
}

// Property: Seal then Open is the identity for random keys and messages.
func TestSealOpenRoundTrip(t *testing.T) {
	f := func(keySeed byte, msg []byte) bool {
		key := make([]byte, KeySize)
		for i := range key {
			key[i] = keySeed ^ byte(i*13)
		}
		nonce := make([]byte, NonceSize)
		ct, err := Seal(key, nonce, msg)
		if err != nil {
			return false
		}
		pt, err := Open(key, nonce, ct)
		if err != nil {
			return false
		}
		return bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: keystream looks balanced (crude randomness sanity check).
func TestKeystreamBitBalance(t *testing.T) {
	key := make([]byte, KeySize)
	key[0] = 1
	nonce := make([]byte, NonceSize)
	c, err := New(key, nonce, 0)
	if err != nil {
		t.Fatal(err)
	}
	ks := make([]byte, 1<<16)
	c.Keystream(ks)
	ones := 0
	for _, b := range ks {
		for bit := 0; bit < 8; bit++ {
			if b&(1<<bit) != 0 {
				ones++
			}
		}
	}
	total := len(ks) * 8
	frac := float64(ones) / float64(total)
	if frac < 0.49 || frac > 0.51 {
		t.Errorf("keystream bit balance %v, want ≈ 0.5", frac)
	}
}

func BenchmarkXORKeyStream(b *testing.B) {
	key := make([]byte, KeySize)
	nonce := make([]byte, NonceSize)
	c, _ := New(key, nonce, 0)
	buf := make([]byte, 4096)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.XORKeyStream(buf, buf)
	}
}
