package transcipher

import (
	"math"
	"math/rand"
	"testing"

	"quhe/internal/he/ckks"
)

func testCipher(t testing.TB) (*Cipher, *ckks.Context) {
	t.Helper()
	p, err := ckks.NewParams(8, 24, 18, 2) // small ring for fast tests
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := ckks.NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ctx, 8)
	if err != nil {
		t.Fatal(err)
	}
	return c, ctx
}

func TestNewValidation(t *testing.T) {
	p, err := ckks.NewParams(8, 35, 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := ckks.NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(shallow, 8); err == nil {
		t.Error("depth-1 context accepted")
	}
	_, ctx := testCipher(t)
	if _, err := New(ctx, 1); err == nil {
		t.Error("keyLen 1 accepted")
	}
	if _, err := New(ctx, 100); err == nil {
		t.Error("keyLen 100 accepted")
	}
}

func TestDeriveKeyDeterministic(t *testing.T) {
	c, _ := testCipher(t)
	k1, err := c.DeriveKey([]byte("qkd key material"))
	if err != nil {
		t.Fatal(err)
	}
	k2, err := c.DeriveKey([]byte("qkd key material"))
	if err != nil {
		t.Fatal(err)
	}
	k3, err := c.DeriveKey([]byte("different material"))
	if err != nil {
		t.Fatal(err)
	}
	if len(k1) != c.KeyLen() {
		t.Fatalf("key has %d coords", len(k1))
	}
	same, diff := true, false
	for j := range k1 {
		if k1[j] != k2[j] {
			same = false
		}
		if k1[j] != k3[j] {
			diff = true
		}
		if k1[j] < -1 || k1[j] > 1 {
			t.Errorf("coord %d = %v outside [-1,1]", j, k1[j])
		}
	}
	if !same {
		t.Error("same material gave different keys")
	}
	if !diff {
		t.Error("different material gave identical keys")
	}
	if _, err := c.DeriveKey(nil); err == nil {
		t.Error("empty material accepted")
	}
}

func TestMaskUnmaskRoundTrip(t *testing.T) {
	c, _ := testCipher(t)
	key, err := c.DeriveKey([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, c.Slots())
	for i := range data {
		data[i] = rng.Float64()*2 - 1
	}
	nonce := []byte("session-1")
	masked, err := c.Mask(key, nonce, 0, data)
	if err != nil {
		t.Fatal(err)
	}
	// Masked data must differ from plaintext (keystream nonzero).
	movedCount := 0
	for i := range data {
		if math.Abs(masked[i]-data[i]) > 1e-9 {
			movedCount++
		}
	}
	if movedCount < len(data)/2 {
		t.Errorf("only %d of %d slots masked", movedCount, len(data))
	}
	got, err := c.Unmask(key, nonce, 0, masked)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Abs(got[i]-data[i]) > 1e-12 {
			t.Fatalf("slot %d: %v != %v", i, got[i], data[i])
		}
	}
}

func TestKeystreamBlockAndNonceSeparation(t *testing.T) {
	c, _ := testCipher(t)
	key, _ := c.DeriveKey([]byte("k"))
	ks0, err := c.Keystream(key, []byte("n1"), 0)
	if err != nil {
		t.Fatal(err)
	}
	ks1, err := c.Keystream(key, []byte("n1"), 1)
	if err != nil {
		t.Fatal(err)
	}
	ksN, err := c.Keystream(key, []byte("n2"), 0)
	if err != nil {
		t.Fatal(err)
	}
	identical := func(a, b []float64) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if identical(ks0, ks1) {
		t.Error("blocks 0 and 1 share a keystream")
	}
	if identical(ks0, ksN) {
		t.Error("different nonces share a keystream")
	}
}

// TestHomomorphicKeystreamMatchesPlain is the core transciphering
// correctness property: the server's homomorphically computed keystream
// decrypts to the client's plaintext keystream.
func TestHomomorphicKeystreamMatchesPlain(t *testing.T) {
	c, ctx := testCipher(t)
	kg := ckks.NewKeyGenerator(ctx, 5)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	ev := ckks.NewEvaluator(ctx, 6)
	enc := ckks.NewEncoder(ctx)

	key, err := c.DeriveKey([]byte("qkd-derived"))
	if err != nil {
		t.Fatal(err)
	}
	encKey, err := c.EncryptKey(ev, pk, key)
	if err != nil {
		t.Fatal(err)
	}
	nonce := []byte("n")
	want, err := c.Keystream(key, nonce, 0)
	if err != nil {
		t.Fatal(err)
	}
	ksCt, err := c.HomomorphicKeystream(ev, rlk, encKey, nonce, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ksCt.Level != 0 {
		t.Errorf("keystream ciphertext at level %d, want 0", ksCt.Level)
	}
	got := enc.DecodeReal(ev.Decrypt(sk, ksCt))
	worst := 0.0
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > worst {
			worst = d
		}
	}
	if worst > 0.02 {
		t.Errorf("homomorphic keystream error %v", worst)
	}
}

// TestTranscipherEndToEnd replays §III-A: client masks data under the QKD
// key, server transciphers, result decrypts to the original data.
func TestTranscipherEndToEnd(t *testing.T) {
	c, ctx := testCipher(t)
	kg := ckks.NewKeyGenerator(ctx, 7)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	ev := ckks.NewEvaluator(ctx, 8)
	enc := ckks.NewEncoder(ctx)

	key, err := c.DeriveKey([]byte("shared-qkd-key"))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	data := make([]float64, c.Slots())
	for i := range data {
		data[i] = rng.Float64()*2 - 1
	}
	nonce := []byte("uplink-7")
	masked, err := c.Mask(key, nonce, 3, data)
	if err != nil {
		t.Fatal(err)
	}
	encKey, err := c.EncryptKey(ev, pk, key)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := c.Transcipher(ev, rlk, encKey, nonce, 3, masked)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.DecodeReal(ev.Decrypt(sk, ct))
	worst := 0.0
	for i := range data {
		if d := math.Abs(got[i] - data[i]); d > worst {
			worst = d
		}
	}
	if worst > 0.02 {
		t.Errorf("transciphering error %v", worst)
	}
}

// TestTranscipheredComputation goes one step further: after transciphering
// the server computes on the recovered ciphertext (an encrypted weighted
// sum), matching the paper's encrypted-prediction workload.
func TestTranscipheredComputation(t *testing.T) {
	c, ctx := testCipher(t)
	kg := ckks.NewKeyGenerator(ctx, 11)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	ev := ckks.NewEvaluator(ctx, 12)
	enc := ckks.NewEncoder(ctx)

	key, err := c.DeriveKey([]byte("k2"))
	if err != nil {
		t.Fatal(err)
	}
	data := []float64{0.5, -0.25, 0.75, 0.1}
	padded := make([]float64, c.Slots())
	copy(padded, data)
	masked, err := c.Mask(key, []byte("n"), 0, padded)
	if err != nil {
		t.Fatal(err)
	}
	encKey, err := c.EncryptKey(ev, pk, key)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := c.Transcipher(ev, rlk, encKey, []byte("n"), 0, masked)
	if err != nil {
		t.Fatal(err)
	}
	// Additive encrypted computation at the bottom level: ct + ct − bias
	// (a multiplicative step would exceed the small base modulus of this
	// test's 24-bit chain; the securenlp example runs one with room).
	doubled, err := ev.Add(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	bias := make([]float64, c.Slots())
	for i := range bias {
		bias[i] = 0.1
	}
	biasPt, err := ckks.NewEncoder(ctx).EncodeRealAtLevel(bias, doubled.Scale, doubled.Level)
	if err != nil {
		t.Fatal(err)
	}
	outCt, err := ev.SubPlain(doubled, biasPt)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.DecodeReal(ev.Decrypt(sk, outCt))
	for i, d := range data {
		want := 2*d - 0.1
		if math.Abs(got[i]-want) > 0.03 {
			t.Errorf("slot %d = %v, want %v", i, got[i], want)
		}
	}
}

// TestScratchReuseMatchesAllocating drives the serving hot path: one
// Scratch reused across several blocks must produce bit-identical
// ciphertexts to the allocating TranscipherAffine, including blocks that
// cover only a prefix of the slots (stale staging data must not leak).
func TestScratchReuseMatchesAllocating(t *testing.T) {
	c, ctx := testCipher(t)
	kg := ckks.NewKeyGenerator(ctx, 21)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	enc := ckks.NewEncoder(ctx)

	key, err := c.DeriveKey([]byte("scratch-key"))
	if err != nil {
		t.Fatal(err)
	}
	evA := ckks.NewEvaluator(ctx, 22)
	encKey, err := c.EncryptKey(evA, pk, key)
	if err != nil {
		t.Fatal(err)
	}
	evB := ckks.NewEvaluator(ctx, 23)

	weights := []float64{0.5, -1, 0.25, 2}
	bias := []float64{0.1, 0, -0.1, 0.2}
	nonce := []byte("scratch-nonce")
	sc := c.NewScratch()
	rng := rand.New(rand.NewSource(24))
	for block := uint32(0); block < 3; block++ {
		// Vary the covered prefix so scratch reuse is exercised on
		// partially filled blocks too.
		n := c.Slots() >> block
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.Float64()*2 - 1
		}
		masked, err := c.Mask(key, nonce, block, data)
		if err != nil {
			t.Fatal(err)
		}
		want, err := c.TranscipherAffine(evA, rlk, encKey, nonce, block, masked, weights, bias)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.TranscipherAffineWith(sc, evB, rlk, encKey, nonce, block, masked, weights, bias)
		if err != nil {
			t.Fatal(err)
		}
		if got.Level != want.Level || got.Scale != want.Scale {
			t.Fatalf("block %d: level/scale mismatch", block)
		}
		for i := range want.C0 {
			for j := range want.C0[i] {
				if got.C0[i][j] != want.C0[i][j] || got.C1[i][j] != want.C1[i][j] {
					t.Fatalf("block %d: ciphertext differs at limb %d coeff %d", block, i, j)
				}
			}
		}
		_ = enc
	}
	_ = sk
}

func TestScratchSizeMismatchRejected(t *testing.T) {
	c, ctx := testCipher(t)
	other, err := New(ctx, 4) // different keyLen → differently sized scratch
	if err != nil {
		t.Fatal(err)
	}
	if err := c.coeffBlockInto([]byte("n"), 0, other.NewScratch()); err == nil {
		t.Error("foreign scratch accepted")
	}
}

func TestParamsBuiltIn(t *testing.T) {
	p := Params()
	if p.Depth < 2 {
		t.Errorf("built-in depth %d < 2", p.Depth)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("built-in params invalid: %v", err)
	}
}

func BenchmarkHomomorphicKeystream(b *testing.B) {
	c, ctx := testCipher(b)
	kg := ckks.NewKeyGenerator(ctx, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	ev := ckks.NewEvaluator(ctx, 2)
	key, _ := c.DeriveKey([]byte("k"))
	encKey, err := c.EncryptKey(ev, pk, key)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.HomomorphicKeystream(ev, rlk, encKey, []byte("n"), uint32(i)); err != nil {
			b.Fatal(err)
		}
	}
	_ = sk
}
