// Package transcipher implements the transciphering bridge of the QuHE
// system (§III-A.4): the client encrypts data with a cheap symmetric
// cipher; the server — holding only an HE encryption of the symmetric key —
// homomorphically evaluates the cipher's decryption and obtains a CKKS
// ciphertext of the data, without ever seeing the plaintext.
//
// The paper cites the CKKS transciphering framework of Cho et al. [17]
// applied to ChaCha20. Evaluating a boolean cipher like ChaCha20 under CKKS
// is a multi-year engineering artifact, so this package substitutes the
// HE-friendly construction that modern transciphering actually uses
// (Rubato/HERA-style): an additive stream cipher over the CKKS plaintext
// space whose keystream is a low-degree polynomial of the key,
//
//	ks = A·k + (B·k) ⊙ (C·k),
//
// with public per-block coefficient vectors A, B, C expanded from ChaCha20
// (so the symmetric side really is keyed by the QKD key). The client adds
// ks to its data slot-wise (cheap); the server evaluates the same
// polynomial on slot-replicated encryptions of the key coordinates —
// plaintext multiplications plus one ciphertext multiplication, no
// rotations — and subtracts. The substitution preserves exactly the
// behaviour the paper's cost hook f_eval(λ) (Eq. 29) models: the server
// pays HE work per transciphered block, the client pays symmetric work.
//
// The toy cipher's concrete security is NOT argued here; it is a
// structural stand-in (see DESIGN.md §3).
package transcipher

import (
	"encoding/binary"
	"errors"
	"fmt"

	"quhe/internal/chacha20"
	"quhe/internal/he/ckks"
)

// Cipher binds a CKKS context to the transciphering construction.
// It is immutable and safe for concurrent use.
type Cipher struct {
	ctx     *ckks.Context
	encoder *ckks.Encoder
	keyLen  int
}

// New builds a transciphering cipher. The context needs depth ≥ 2 (one
// level for the linear layer, one for the quadratic), and the encoding
// scale must equal the top rescaling prime so the linear and quadratic
// paths land on identical scales.
func New(ctx *ckks.Context, keyLen int) (*Cipher, error) {
	if ctx.Params.Depth < 2 {
		return nil, fmt.Errorf("transcipher: need CKKS depth ≥ 2, got %d", ctx.Params.Depth)
	}
	if keyLen < 2 || keyLen > 64 {
		return nil, fmt.Errorf("transcipher: keyLen %d outside [2, 64]", keyLen)
	}
	return &Cipher{ctx: ctx, encoder: ckks.NewEncoder(ctx), keyLen: keyLen}, nil
}

// Params returns a depth-2 CKKS parameter set sized for transciphering.
func Params() ckks.Params {
	p, err := ckks.NewParams(10, 24, 18, 2)
	if err != nil {
		panic("transcipher: invalid built-in params: " + err.Error())
	}
	return p
}

// scale returns the encoding scale: exactly the top rescaling prime.
func (c *Cipher) scale() float64 { return float64(c.ctx.Primes[c.ctx.MaxLevel()]) }

// KeyLen returns the number of key coordinates.
func (c *Cipher) KeyLen() int { return c.keyLen }

// Slots returns the block size in plaintext slots.
func (c *Cipher) Slots() int { return c.ctx.Params.Slots() }

// DeriveKey maps raw QKD key material to the cipher's key coordinates in
// [−1, 1] by expanding it through ChaCha20.
func (c *Cipher) DeriveKey(qkdKey []byte) ([]float64, error) {
	if len(qkdKey) == 0 {
		return nil, errors.New("transcipher: empty key material")
	}
	seed := make([]byte, chacha20.KeySize)
	copy(seed, qkdKey) // truncate/zero-pad to 32 bytes
	stream, err := chacha20.New(seed, make([]byte, chacha20.NonceSize), 0)
	if err != nil {
		return nil, err
	}
	raw := make([]byte, 2*c.keyLen)
	stream.Keystream(raw)
	key := make([]float64, c.keyLen)
	for j := range key {
		v := int16(binary.LittleEndian.Uint16(raw[2*j:]))
		key[j] = float64(v) / 32768
	}
	return key, nil
}

// Scratch holds the buffers one transciphering evaluation fills per
// block: the raw ChaCha20 expansion, the three coefficient matrices and
// the plaintext staging vector. A serving worker reuses one Scratch
// across every block it processes instead of allocating ~3·keyLen·slots
// floats per request. Not safe for concurrent use — pair one Scratch with
// one evaluator (see serve.Worker).
type Scratch struct {
	raw       []byte
	a, b, cc  [][]float64
	plain     []float64
	keyLen    int
	slotCount int
}

// NewScratch allocates per-worker transciphering buffers for this cipher.
func (c *Cipher) NewScratch() *Scratch {
	slots := c.Slots()
	alloc := func() [][]float64 {
		m := make([][]float64, c.keyLen)
		for j := range m {
			m[j] = make([]float64, slots)
		}
		return m
	}
	return &Scratch{
		raw:       make([]byte, 3*c.keyLen*slots*2),
		a:         alloc(),
		b:         alloc(),
		cc:        alloc(),
		plain:     make([]float64, slots),
		keyLen:    c.keyLen,
		slotCount: slots,
	}
}

// coeffBlockInto expands the public per-block coefficient vectors A, B, C
// (each keyLen × slots) from ChaCha20 keyed by the public nonce into the
// scratch buffers. Both ends compute it identically.
func (c *Cipher) coeffBlockInto(nonce []byte, block uint32, sc *Scratch) error {
	if sc.keyLen != c.keyLen || sc.slotCount != c.Slots() {
		return fmt.Errorf("transcipher: scratch sized %d×%d, cipher needs %d×%d",
			sc.keyLen, sc.slotCount, c.keyLen, c.Slots())
	}
	pub := make([]byte, chacha20.KeySize)
	copy(pub, "quhe-transcipher-public-expand-1") // public constant, 32 bytes
	nn := make([]byte, chacha20.NonceSize)
	copy(nn, nonce)
	stream, err := chacha20.New(pub, nn, block*3)
	if err != nil {
		return err
	}
	slots := c.Slots()
	stream.Keystream(sc.raw)
	// Entries are normalized by keyLen so |A·k|, |B·k|, |C·k| ≤ 1: the
	// homomorphic evaluation then stays well inside the modulus headroom.
	norm := 32768 * float64(c.keyLen)
	fill := func(m [][]float64, off int) {
		for j := 0; j < c.keyLen; j++ {
			for s := 0; s < slots; s++ {
				v := int16(binary.LittleEndian.Uint16(sc.raw[off+2*(j*slots+s):]))
				m[j][s] = float64(v) / norm
			}
		}
	}
	stride := c.keyLen * slots * 2
	fill(sc.a, 0)
	fill(sc.b, stride)
	fill(sc.cc, 2*stride)
	return nil
}

// coeffBlock is the allocating form of coeffBlockInto for one-shot
// callers (client-side masking, tests).
func (c *Cipher) coeffBlock(nonce []byte, block uint32) (a, b, cc [][]float64, err error) {
	sc := c.NewScratch()
	if err := c.coeffBlockInto(nonce, block, sc); err != nil {
		return nil, nil, nil, err
	}
	return sc.a, sc.b, sc.cc, nil
}

// Keystream computes the plaintext keystream block: the client-side (and
// test-oracle) evaluation of ks = A·k + (B·k)⊙(C·k).
func (c *Cipher) Keystream(key []float64, nonce []byte, block uint32) ([]float64, error) {
	if len(key) != c.keyLen {
		return nil, fmt.Errorf("transcipher: key has %d coordinates, want %d", len(key), c.keyLen)
	}
	a, b, cc, err := c.coeffBlock(nonce, block)
	if err != nil {
		return nil, err
	}
	slots := c.Slots()
	ks := make([]float64, slots)
	for s := 0; s < slots; s++ {
		var lin, u, v float64
		for j := 0; j < c.keyLen; j++ {
			lin += a[j][s] * key[j]
			u += b[j][s] * key[j]
			v += cc[j][s] * key[j]
		}
		ks[s] = lin + u*v
	}
	return ks, nil
}

// Mask encrypts data symmetrically: out = data + ks (slot-wise). The
// client sends the result in the clear alongside the HE-encrypted key.
func (c *Cipher) Mask(key []float64, nonce []byte, block uint32, data []float64) ([]float64, error) {
	if len(data) > c.Slots() {
		return nil, fmt.Errorf("transcipher: %d values exceed %d slots", len(data), c.Slots())
	}
	ks, err := c.Keystream(key, nonce, block)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(data))
	for i := range data {
		out[i] = data[i] + ks[i]
	}
	return out, nil
}

// Unmask inverts Mask given the key (client-side decryption; the server
// uses Transcipher instead).
func (c *Cipher) Unmask(key []float64, nonce []byte, block uint32, masked []float64) ([]float64, error) {
	ks, err := c.Keystream(key, nonce, block)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(masked))
	for i := range masked {
		out[i] = masked[i] - ks[i]
	}
	return out, nil
}

// EncryptKey produces the HE encryption of the key the client uploads:
// one ciphertext per key coordinate, slot-replicated (avoiding rotations).
func (c *Cipher) EncryptKey(ev *ckks.Evaluator, pk *ckks.PublicKey, key []float64) ([]*ckks.Ciphertext, error) {
	if len(key) != c.keyLen {
		return nil, fmt.Errorf("transcipher: key has %d coordinates, want %d", len(key), c.keyLen)
	}
	out := make([]*ckks.Ciphertext, c.keyLen)
	slots := c.Slots()
	for j, kj := range key {
		rep := make([]float64, slots)
		for s := range rep {
			rep[s] = kj
		}
		pt, err := c.encoder.EncodeReal(rep, c.scale())
		if err != nil {
			return nil, err
		}
		out[j] = ev.Encrypt(pk, pt)
	}
	return out, nil
}

// HomomorphicKeystream evaluates the keystream block on the encrypted key:
// the server-side core of transciphering. The result sits at level 0.
func (c *Cipher) HomomorphicKeystream(ev *ckks.Evaluator, rlk *ckks.RelinKey, encKey []*ckks.Ciphertext, nonce []byte, block uint32) (*ckks.Ciphertext, error) {
	if len(encKey) != c.keyLen {
		return nil, fmt.Errorf("transcipher: %d key ciphertexts, want %d", len(encKey), c.keyLen)
	}
	a, b, cc, err := c.coeffBlock(nonce, block)
	if err != nil {
		return nil, err
	}
	return c.evalKeystream(ev, rlk, encKey, a, b, cc)
}

// evalKeystream evaluates A·k + (B·k)⊙(C·k) homomorphically for arbitrary
// public coefficient matrices.
func (c *Cipher) evalKeystream(ev *ckks.Evaluator, rlk *ckks.RelinKey, encKey []*ckks.Ciphertext, a, b, cc [][]float64) (*ckks.Ciphertext, error) {
	top := c.ctx.MaxLevel()

	// linearForm computes Rescale(Σ_j coeff_j ⊙ encKey_j) at level `at`,
	// reusing one accumulator, one term and one level-drop ciphertext
	// across the whole sum instead of allocating per coordinate.
	linearForm := func(coeff [][]float64, at int) (*ckks.Ciphertext, error) {
		acc := c.ctx.NewCiphertext(at)
		term := c.ctx.NewCiphertext(at)
		dropped := c.ctx.NewCiphertext(at)
		for j := 0; j < c.keyLen; j++ {
			pt, err := c.encoder.EncodeRealAtLevel(coeff[j], c.scale(), at)
			if err != nil {
				return nil, err
			}
			ctj := encKey[j]
			if ctj.Level != at {
				if err := ev.DropLevelInto(ctj, at, dropped); err != nil {
					return nil, err
				}
				ctj = dropped
			}
			if j == 0 {
				if err := ev.MulPlainInto(ctj, pt, acc); err != nil {
					return nil, err
				}
				continue
			}
			if err := ev.MulPlainInto(ctj, pt, term); err != nil {
				return nil, err
			}
			if err := ev.AddInto(acc, term, acc); err != nil {
				return nil, err
			}
		}
		if err := ev.RescaleInto(acc, acc); err != nil {
			return nil, err
		}
		return acc, nil
	}

	// Quadratic part: (B·k)⊙(C·k) at level top−1, one MulRelin, rescale.
	u, err := linearForm(b, top)
	if err != nil {
		return nil, err
	}
	v, err := linearForm(cc, top)
	if err != nil {
		return nil, err
	}
	quad, err := ev.MulRelin(u, v, rlk)
	if err != nil {
		return nil, err
	}
	if quad, err = ev.Rescale(quad); err != nil {
		return nil, err
	}
	// Linear part evaluated one level down so both paths end at level
	// top−2 with identical scale Δ²/p (Δ equals the top prime).
	lin, err := linearForm(a, top-1)
	if err != nil {
		return nil, err
	}
	return ev.Add(lin, quad)
}

// Transcipher converts a masked (symmetrically encrypted) block into a
// CKKS ciphertext of the underlying data: Enc(m) = Trivial(masked) − Enc(ks).
func (c *Cipher) Transcipher(ev *ckks.Evaluator, rlk *ckks.RelinKey, encKey []*ckks.Ciphertext, nonce []byte, block uint32, masked []float64) (*ckks.Ciphertext, error) {
	ks, err := c.HomomorphicKeystream(ev, rlk, encKey, nonce, block)
	if err != nil {
		return nil, err
	}
	pt, err := c.encoder.EncodeRealAtLevel(masked, ks.Scale, ks.Level)
	if err != nil {
		return nil, err
	}
	trivial := ev.Trivial(pt)
	return ev.Sub(trivial, ks)
}

// TranscipherAffine fuses a slot-wise affine model into transciphering,
// producing Enc(w⊙m + bias) at no extra homomorphic depth: the public
// keystream coefficients are scaled by w before evaluation (so the server
// computes Enc(w⊙ks)), while w⊙masked + bias is computed in plaintext —
//
//	Enc(w⊙m + bias) = Trivial(w⊙masked + bias) − Enc(w⊙ks).
//
// This is the linear-layer fusion used by RtF-style pipelines. |w| should
// stay ≤ ~2 to preserve the evaluation's modulus headroom.
func (c *Cipher) TranscipherAffine(ev *ckks.Evaluator, rlk *ckks.RelinKey, encKey []*ckks.Ciphertext, nonce []byte, block uint32, masked, weights, bias []float64) (*ckks.Ciphertext, error) {
	return c.TranscipherAffineWith(nil, ev, rlk, encKey, nonce, block, masked, weights, bias)
}

// TranscipherAffineWith is TranscipherAffine with caller-provided scratch
// buffers — the serving hot path, where each pool worker reuses one
// Scratch across every block it processes. A nil scratch allocates a
// fresh one (equivalent to TranscipherAffine).
func (c *Cipher) TranscipherAffineWith(sc *Scratch, ev *ckks.Evaluator, rlk *ckks.RelinKey, encKey []*ckks.Ciphertext, nonce []byte, block uint32, masked, weights, bias []float64) (*ckks.Ciphertext, error) {
	slots := c.Slots()
	if len(masked) > slots || len(weights) > slots || len(bias) > slots {
		return nil, fmt.Errorf("transcipher: affine inputs exceed %d slots", slots)
	}
	if sc == nil {
		sc = c.NewScratch()
	}
	if err := c.coeffBlockInto(nonce, block, sc); err != nil {
		return nil, err
	}
	wAt := func(s int) float64 {
		if s < len(weights) {
			return weights[s]
		}
		return 1
	}
	// Fold w into the linear layer and one factor of the quadratic.
	for j := 0; j < c.keyLen; j++ {
		for s := 0; s < slots; s++ {
			w := wAt(s)
			sc.a[j][s] *= w
			sc.b[j][s] *= w
		}
	}
	ks, err := c.evalKeystream(ev, rlk, encKey, sc.a, sc.b, sc.cc)
	if err != nil {
		return nil, err
	}
	// Every slot is assigned (not just the covered prefix) so reused
	// scratch never leaks a previous block's staging values.
	for s := 0; s < slots; s++ {
		v := 0.0
		if s < len(masked) {
			v = wAt(s) * masked[s]
		}
		if s < len(bias) {
			v += bias[s]
		}
		sc.plain[s] = v
	}
	pt, err := c.encoder.EncodeRealAtLevel(sc.plain, ks.Scale, ks.Level)
	if err != nil {
		return nil, err
	}
	return ev.Sub(ev.Trivial(pt), ks)
}
