package experiments

import (
	"fmt"

	"quhe/internal/core"
)

// Fig4Result carries the per-stage convergence traces of Fig. 4.
type Fig4Result struct {
	// Stage1 is the P2 objective after each interior-point Newton step
	// (Fig. 4(a), decreasing).
	Stage1 []float64
	// Stage2 is the branch-and-bound certificate curve (Fig. 4(b)): the
	// popped upper bound per node expansion, non-increasing onto the
	// optimum (the mirror image of the paper's rising incumbent plot).
	Stage2 []float64
	// Stage3POBJ is the primal objective of the Stage-3 inner solver per
	// Newton step (Fig. 4(c)).
	Stage3POBJ []float64
	// Stage3Gap is the duality gap per centering step (Fig. 4(d),
	// decreasing to ~1e-5 and below).
	Stage3Gap []float64
	// Iterations per stage, mirroring the counts the paper quotes
	// (12 / 26 / 34 in their run).
	Stage1Iters, Stage2Iters, Stage3Iters int
}

// Fig4 reruns one QuHE pass stage by stage, capturing every trace the paper
// plots in Fig. 4.
func Fig4(cfg *core.Config) (Fig4Result, error) {
	var res Fig4Result

	s1, err := cfg.SolveStage1(core.Stage1Options{})
	if err != nil {
		return res, fmt.Errorf("experiments: fig4 stage 1: %w", err)
	}
	res.Stage1 = s1.Trace
	res.Stage1Iters = s1.Iters

	v, err := cfg.DefaultVariables()
	if err != nil {
		return res, err
	}
	v.Phi, v.W = s1.Phi, s1.W

	s2, err := cfg.SolveStage2(v, true)
	if err != nil {
		return res, fmt.Errorf("experiments: fig4 stage 2: %w", err)
	}
	res.Stage2 = s2.Trace
	res.Stage2Iters = s2.Nodes
	v.Lambda = s2.Lambda

	s3, err := cfg.SolveStage3(v, core.Stage3Options{})
	if err != nil {
		return res, fmt.Errorf("experiments: fig4 stage 3: %w", err)
	}
	res.Stage3POBJ = s3.POBJ
	res.Stage3Gap = s3.Gaps
	res.Stage3Iters = s3.NewtonIters
	return res, nil
}
