package experiments

import (
	"fmt"

	"quhe/internal/core"
)

// Fig6Which selects one of the four resource sweeps of Fig. 6.
type Fig6Which int

const (
	// Fig6Bandwidth sweeps B_total (Fig. 6(a)).
	Fig6Bandwidth Fig6Which = iota + 1
	// Fig6Power sweeps p_max (Fig. 6(b)).
	Fig6Power
	// Fig6ClientCPU sweeps f_c^max (Fig. 6(c)).
	Fig6ClientCPU
	// Fig6ServerCPU sweeps f_total (Fig. 6(d)).
	Fig6ServerCPU
)

// String implements fmt.Stringer.
func (w Fig6Which) String() string {
	switch w {
	case Fig6Bandwidth:
		return "bandwidth"
	case Fig6Power:
		return "power"
	case Fig6ClientCPU:
		return "client-cpu"
	case Fig6ServerCPU:
		return "server-cpu"
	default:
		return fmt.Sprintf("Fig6Which(%d)", int(w))
	}
}

// SweepMethods lists the methods compared in every Fig. 6 panel, in the
// paper's legend order.
var SweepMethods = []string{"AA", "OLAA", "OCCR", "QuHE"}

// SweepResult holds one panel of Fig. 6: the objective of each method
// across a resource budget sweep.
type SweepResult struct {
	Which  Fig6Which
	XLabel string
	Xs     []float64
	// Series maps method name → objective values aligned with Xs.
	Series map[string][]float64
}

// fig6Range returns the paper's x-axis for each panel.
func fig6Range(which Fig6Which, points int) ([]float64, string, error) {
	if points <= 1 {
		points = 5
	}
	var lo, hi float64
	var label string
	switch which {
	case Fig6Bandwidth:
		lo, hi, label = 0.5e7, 1.5e7, "B_total (Hz)"
	case Fig6Power:
		lo, hi, label = 0.2, 1.0, "p_max (W)"
	case Fig6ClientCPU:
		lo, hi, label = 0.5e10, 1.5e10, "f_c^max (Hz)"
	case Fig6ServerCPU:
		lo, hi, label = 2e10, 3e10, "f_total (Hz)"
	default:
		return nil, "", fmt.Errorf("experiments: unknown sweep %d", int(which))
	}
	xs := make([]float64, points)
	for i := range xs {
		xs[i] = lo + (hi-lo)*float64(i)/float64(points-1)
	}
	return xs, label, nil
}

// applySweep clones cfg with the swept budget set to x.
func applySweep(cfg *core.Config, which Fig6Which, x float64) *core.Config {
	c := cfg.Clone()
	switch which {
	case Fig6Bandwidth:
		c.BTotal = x
	case Fig6Power:
		for i := range c.PMax {
			c.PMax[i] = x
		}
	case Fig6ClientCPU:
		for i := range c.FCMax {
			c.FCMax[i] = x
		}
	case Fig6ServerCPU:
		c.FSTotal = x
	}
	return c
}

// Fig6 regenerates one panel of Fig. 6: for each budget value it solves the
// system with AA, OLAA, OCCR and QuHE and records the P1 objective.
// points ≤ 0 selects the paper's 5-point grid.
func Fig6(cfg *core.Config, which Fig6Which, points, workers int) (SweepResult, error) {
	var res SweepResult
	xs, label, err := fig6Range(which, points)
	if err != nil {
		return res, err
	}
	res.Which = which
	res.XLabel = label
	res.Xs = xs
	res.Series = make(map[string][]float64, len(SweepMethods))
	for _, m := range SweepMethods {
		res.Series[m] = make([]float64, len(xs))
	}

	err = parallelMap(len(xs), workers, func(i int) error {
		c := applySweep(cfg, which, xs[i])
		for _, kind := range []core.BaselineKind{core.BaselineAA, core.BaselineOLAA, core.BaselineOCCR} {
			r, err := c.SolveBaseline(kind)
			if err != nil {
				return fmt.Errorf("experiments: fig6 %s x=%g %s: %w", which, xs[i], kind, err)
			}
			res.Series[kind.String()][i] = r.Eval.Objective
		}
		q, err := c.SolveQuHE(core.QuHEOptions{})
		if err != nil {
			return fmt.Errorf("experiments: fig6 %s x=%g QuHE: %w", which, xs[i], err)
		}
		res.Series["QuHE"][i] = q.Eval.Objective
		return nil
	})
	return res, err
}
