// Package experiments regenerates every table and figure of the QuHE
// paper's evaluation (§VI): the optimality study (Fig. 3), per-stage
// convergence traces (Fig. 4), runtime and method comparisons (Fig. 5),
// resource sweeps (Fig. 6) and the Stage-1 solution tables (Tables V–VI).
//
// Each regenerator returns a structured result plus the data needed to
// print the same rows/series the paper reports; the render helpers produce
// ASCII tables and sparkline-style series for terminals and logs.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"quhe/internal/core"
)

// DefaultWorkers is the worker count used when an Options.Workers is zero.
func DefaultWorkers() int {
	n := runtime.NumCPU()
	if n < 1 {
		return 1
	}
	return n
}

// parallelMap runs f(0..n-1) on up to workers goroutines and returns the
// first error (all tasks still run to completion).
func parallelMap(n, workers int, f func(i int) error) error {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := f(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// stage1Fixture solves Stage 1 once and installs the optimal (φ, w) block
// into a fresh default variable assignment — the starting state every
// whole-procedure experiment shares.
func stage1Fixture(cfg *core.Config) (core.Variables, error) {
	v, err := cfg.DefaultVariables()
	if err != nil {
		return v, err
	}
	s1, err := cfg.SolveStage1(core.Stage1Options{})
	if err != nil {
		return v, fmt.Errorf("experiments: stage 1 fixture: %w", err)
	}
	v.Phi, v.W = s1.Phi, s1.W
	return v, nil
}
