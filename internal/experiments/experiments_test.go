package experiments

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"quhe/internal/core"
	"quhe/internal/qnet"
)

func testConfig() *core.Config { return core.PaperConfig(1) }

func TestParallelMap(t *testing.T) {
	out := make([]int, 50)
	err := parallelMap(50, 8, func(i int) error {
		out[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestParallelMapPropagatesError(t *testing.T) {
	want := errors.New("boom")
	err := parallelMap(10, 3, func(i int) error {
		if i == 7 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestFig3Small(t *testing.T) {
	res, err := Fig3(testConfig(), 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 3 {
		t.Fatalf("got %d values", len(res.Values))
	}
	if res.Summary.N != 3 {
		t.Errorf("summary N = %d", res.Summary.N)
	}
	total := 0
	for _, c := range res.Buckets {
		total += c
	}
	if total != 3 {
		t.Errorf("histogram holds %d of 3 values — objectives outside paper range?", total)
	}
	// All solves from reasonable starts should reach a good objective.
	if res.Summary.Min < 0 {
		t.Errorf("min objective %v negative — solver regressed", res.Summary.Min)
	}
}

func TestFig3Deterministic(t *testing.T) {
	a, err := Fig3(testConfig(), 2, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig3(testConfig(), 2, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Errorf("value %d: %v vs %v", i, a.Values[i], b.Values[i])
		}
	}
}

func TestFig4Traces(t *testing.T) {
	res, err := Fig4(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stage1) == 0 || len(res.Stage2) == 0 || len(res.Stage3POBJ) == 0 || len(res.Stage3Gap) == 0 {
		t.Fatalf("missing traces: %d/%d/%d/%d",
			len(res.Stage1), len(res.Stage2), len(res.Stage3POBJ), len(res.Stage3Gap))
	}
	// Fig. 4(a): Stage-1 trace ends below its start.
	if res.Stage1[len(res.Stage1)-1] >= res.Stage1[0] {
		t.Error("stage-1 trace did not decrease")
	}
	// Fig. 4(b): the bound certificate never increases and ends finite.
	for i := 1; i < len(res.Stage2); i++ {
		if res.Stage2[i] > res.Stage2[i-1]+1e-9 {
			t.Fatal("stage-2 bound increased")
		}
	}
	if last := res.Stage2[len(res.Stage2)-1]; math.IsInf(last, 0) || math.IsNaN(last) {
		t.Fatalf("stage-2 trace ends non-finite: %v", last)
	}
	// Fig. 4(d): gap reaches 1e-5.
	min := res.Stage3Gap[0]
	for _, g := range res.Stage3Gap {
		if g < min {
			min = g
		}
	}
	if min > 1e-5 {
		t.Errorf("min stage-3 gap %v > 1e-5", min)
	}
}

func TestFig5a(t *testing.T) {
	res, err := Fig5a(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls[0] != 1 {
		t.Errorf("stage-1 calls = %d, want 1", res.Calls[0])
	}
	if res.Calls[1] < 1 || res.Calls[2] < 1 {
		t.Errorf("stage calls = %v", res.Calls)
	}
	if res.Total <= 0 {
		t.Error("non-positive total runtime")
	}
}

func TestStage1MethodsOrdering(t *testing.T) {
	comps, err := Stage1Methods(testConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 4 {
		t.Fatalf("got %d methods", len(comps))
	}
	byName := map[string]Stage1Comparison{}
	for _, c := range comps {
		byName[c.Method] = c
	}
	quhe, gd, rs := byName["QuHE"], byName["GD"], byName["RS"]
	// Fig. 5(c): GD matches QuHE's value; RS is clearly worse.
	if gd.Objective > quhe.Objective+0.05 {
		t.Errorf("GD %v too far above QuHE %v", gd.Objective, quhe.Objective)
	}
	if rs.Objective < quhe.Objective+0.1 {
		t.Errorf("RS %v unexpectedly close to QuHE %v", rs.Objective, quhe.Objective)
	}
	// Fig. 5(b): GD is the slowest method.
	if gd.Runtime <= quhe.Runtime {
		t.Errorf("GD (%v) not slower than QuHE (%v)", gd.Runtime, quhe.Runtime)
	}
}

func TestFig5dShape(t *testing.T) {
	rows, err := Fig5d(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	get := func(m string) Fig5dRow {
		for _, r := range rows {
			if r.Method == m {
				return r
			}
		}
		t.Fatalf("missing method %s", m)
		return Fig5dRow{}
	}
	aa, olaa, occr, quhe := get("AA"), get("OLAA"), get("OCCR"), get("QuHE")
	if !(aa.Objective < olaa.Objective && olaa.Objective < occr.Objective && occr.Objective < quhe.Objective) {
		t.Errorf("objective ordering violated: AA %v, OLAA %v, OCCR %v, QuHE %v",
			aa.Objective, olaa.Objective, occr.Objective, quhe.Objective)
	}
	if !(quhe.UMSL > aa.UMSL) {
		t.Errorf("QuHE UMSL %v not above AA %v", quhe.UMSL, aa.UMSL)
	}
}

func TestFig6BandwidthSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	res, err := Fig6(testConfig(), Fig6Bandwidth, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Xs) != 2 {
		t.Fatalf("got %d points", len(res.Xs))
	}
	for _, m := range SweepMethods {
		if len(res.Series[m]) != 2 {
			t.Fatalf("series %s has %d points", m, len(res.Series[m]))
		}
	}
	// QuHE dominates every method at every point.
	for i := range res.Xs {
		for _, m := range []string{"AA", "OLAA", "OCCR"} {
			if res.Series["QuHE"][i] < res.Series[m][i]-1e-6 {
				t.Errorf("x=%v: QuHE %v below %s %v", res.Xs[i], res.Series["QuHE"][i], m, res.Series[m][i])
			}
		}
	}
	// More bandwidth never hurts QuHE.
	if res.Series["QuHE"][1] < res.Series["QuHE"][0]-1e-3 {
		t.Errorf("QuHE objective decreased with more bandwidth: %v", res.Series["QuHE"])
	}
}

func TestFig6UnknownSweep(t *testing.T) {
	if _, err := Fig6(testConfig(), Fig6Which(99), 2, 1); err == nil {
		t.Error("unknown sweep accepted")
	}
}

func TestFig6WhichString(t *testing.T) {
	if Fig6Bandwidth.String() != "bandwidth" || Fig6ServerCPU.String() != "server-cpu" {
		t.Error("Fig6Which labels wrong")
	}
	if !strings.Contains(Fig6Which(9).String(), "9") {
		t.Error("unknown Fig6Which label")
	}
}

func TestTables5And6(t *testing.T) {
	cfg := testConfig()
	t5, err := Table5(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != cfg.N() {
		t.Errorf("Table V has %d rows, want %d", len(t5.Rows), cfg.N())
	}
	if len(t5.Header) != 5 {
		t.Errorf("Table V header = %v", t5.Header)
	}
	// QuHE column of row 1 must match the paper's 2.098.
	if !strings.HasPrefix(t5.Rows[0][1], "2.09") {
		t.Errorf("Table V phi_1 (QuHE) = %s, paper reports 2.098", t5.Rows[0][1])
	}

	t6, err := Table6(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(t6.Rows) != cfg.Net.NumLinks() {
		t.Errorf("Table VI has %d rows, want %d", len(t6.Rows), cfg.Net.NumLinks())
	}
	// Unused link 6 must report w = 1 for QuHE (paper row w6 = 1.0000).
	if !strings.HasPrefix(t6.Rows[5][1], "1.0000") {
		t.Errorf("Table VI w_6 (QuHE) = %s, want 1.0000", t6.Rows[5][1])
	}
}

func TestTopologyTables(t *testing.T) {
	routes, links := TopologyTables(qnet.SURFnet())
	if len(routes.Rows) != 6 || len(links.Rows) != 18 {
		t.Fatalf("rows = %d routes, %d links", len(routes.Rows), len(links.Rows))
	}
	if routes.Rows[0][1] != "(Hilversum, Delft)" {
		t.Errorf("route 1 end nodes = %s", routes.Rows[0][1])
	}
	if links.Rows[0][2] != "89.84" {
		t.Errorf("link 1 beta = %s", links.Rows[0][2])
	}
}

func TestRenderers(t *testing.T) {
	var buf bytes.Buffer
	tab := Table{Title: "T", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}, {"333", "4"}}}
	tab.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "333") {
		t.Errorf("table render missing content:\n%s", out)
	}

	buf.Reset()
	RenderHistogram(&buf, []float64{0, 1, 2}, []int{3, 1})
	if !strings.Contains(buf.String(), "###") {
		t.Errorf("histogram render missing bars:\n%s", buf.String())
	}

	buf.Reset()
	RenderTrace(&buf, "trace", []float64{5, 4, 3, 2, 1}, 2)
	if !strings.Contains(buf.String(), "iter    0") {
		t.Errorf("trace render missing first point:\n%s", buf.String())
	}
	buf.Reset()
	RenderTrace(&buf, "empty", nil, 0)
	if !strings.Contains(buf.String(), "(empty)") {
		t.Error("empty trace not handled")
	}

	buf.Reset()
	RenderSeries(&buf, SweepResult{
		XLabel: "x", Xs: []float64{1e7},
		Series: map[string][]float64{"AA": {1}, "OLAA": {2}, "OCCR": {3}, "QuHE": {4}},
	})
	if !strings.Contains(buf.String(), "QuHE") {
		t.Errorf("series render missing method:\n%s", buf.String())
	}
}
