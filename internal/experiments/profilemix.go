package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"quhe/internal/edge"
	"quhe/internal/he/profile"
)

// ProfileMixOptions sizes the mixed-security-workload experiment.
type ProfileMixOptions struct {
	// Profiles selects the security profiles to mix (default: every
	// member of the built-in registry).
	Profiles []string
	// ClientsPerProfile is the concurrent session count per profile.
	// Default 1.
	ClientsPerProfile int
	// Blocks is the compute count per client. Default 8.
	Blocks int
	// Slots is the payload size per block. Default 8.
	Slots int
	// Workers sizes each per-profile evaluator pool. Default 2.
	Workers int
	// CalibrationRounds is how many measurement rounds Calibrate runs per
	// profile before serving. Default 2.
	CalibrationRounds int
}

func (o ProfileMixOptions) withDefaults() ProfileMixOptions {
	if len(o.Profiles) == 0 {
		o.Profiles = profile.Default().IDs()
	}
	if o.ClientsPerProfile <= 0 {
		o.ClientsPerProfile = 1
	}
	if o.Blocks <= 0 {
		o.Blocks = 8
	}
	if o.Slots <= 0 {
		o.Slots = 8
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.CalibrationRounds <= 0 {
		o.CalibrationRounds = 2
	}
	return o
}

// ProfileMixStat reports one profile's share of the mixed workload.
type ProfileMixStat struct {
	Profile string  `json:"profile"`
	Lambda  float64 `json:"lambda"`
	MSL     float64 `json:"msl"`
	Slots   int     `json:"slots"`
	// Served and Errors count the profile's blocks across its clients.
	Served int64 `json:"served"`
	Errors int64 `json:"errors"`
	// MeanMs / P50Ms summarize client-observed per-block latency.
	MeanMs float64 `json:"latency_ms_mean"`
	P50Ms  float64 `json:"latency_ms_p50"`
	// CoeffMs is the per-block latency implied by the cost coefficient
	// the controller plans with (profile.CyclesPerBlock at the reference
	// clock, calibrated before the run); ModeledMs is the uncalibrated
	// a·N·log2(N) model.
	CoeffMs   float64 `json:"coeff_ms"`
	ModeledMs float64 `json:"modeled_ms"`
	// CoeffOverMeasured is CoeffMs / MeanMs — the acceptance band is
	// [0.5, 2].
	CoeffOverMeasured float64 `json:"coeff_over_measured"`
	// Utility scores the profile's share with the run's utility-cost
	// terms (α_msl·f_msl(λ)·served − α_T·Σlatency).
	Utility float64 `json:"utility"`
}

// ProfileMixResult is the mixed-λ serving comparison.
type ProfileMixResult struct {
	Profiles []ProfileMixStat `json:"profiles"`
	// CoeffWithin2x reports whether every profile's planning coefficient
	// landed within 2x of its measured per-op latency.
	CoeffWithin2x bool `json:"coeff_within_2x"`
	// TotalUtility sums the per-profile utilities — the
	// mixed-security-workload figure a single-λ runtime cannot produce.
	TotalUtility float64 `json:"total_utility"`
}

// ProfileMix runs a heterogeneous-security serving workload: sessions on
// every selected profile compute side by side on one edge server, each on
// its own per-profile evaluator pool and independently keyed CKKS
// context. Each profile is calibrated first, so the run also verifies
// that the cost coefficients the control plane would plan with track the
// measured per-op latency. Results are verified against the model on
// every block.
func ProfileMix(opts ProfileMixOptions) (ProfileMixResult, error) {
	opts = opts.withDefaults()
	var res ProfileMixResult

	reg := profile.Default()
	for _, id := range opts.Profiles {
		p, ok := reg.Get(id)
		if !ok {
			return res, fmt.Errorf("profilemix: unknown profile %q", id)
		}
		if _, err := p.Calibrate(edge.KeyLen, opts.CalibrationRounds); err != nil {
			return res, fmt.Errorf("profilemix: calibrate %s: %w", id, err)
		}
	}

	model := edge.Model{Weights: []float64{0.5}, Bias: []float64{0.1}}
	srv, err := edge.NewServer("127.0.0.1:0", edge.ServerConfig{
		Model:   model,
		Workers: opts.Workers,
	})
	if err != nil {
		return res, err
	}
	defer srv.Close()

	data := make([]float64, opts.Slots)
	for i := range data {
		data[i] = 0.25
	}
	want := model.Weights[0]*data[0] + model.Bias[0]

	res.CoeffWithin2x = true
	for _, id := range opts.Profiles {
		p, _ := reg.Get(id)
		stat := ProfileMixStat{
			Profile:   id,
			Lambda:    p.Lambda,
			MSL:       p.MSL(),
			Slots:     p.Slots(),
			CoeffMs:   1e3 * p.CyclesPerBlock() / profile.RefHz,
			ModeledMs: 1e3 * p.ModeledCyclesPerBlock() / profile.RefHz,
		}
		var lats []float64
		for ci := 0; ci < opts.ClientsPerProfile; ci++ {
			c, err := edge.DialWith(srv.Addr(), fmt.Sprintf("mix-%s-%d", id, ci),
				[]byte("mix-"+id), int64(300+ci), edge.DialConfig{Profile: id})
			if err != nil {
				return res, fmt.Errorf("profilemix: dial %s: %w", id, err)
			}
			for blk := 0; blk < opts.Blocks; blk++ {
				t0 := time.Now()
				out, err := c.Compute(uint32(blk), data)
				lat := time.Since(t0)
				if err != nil || math.Abs(out[0]-want) > 0.05 {
					stat.Errors++
					continue
				}
				stat.Served++
				lats = append(lats, float64(lat)/float64(time.Millisecond))
			}
			c.Close()
		}
		var sum float64
		for _, l := range lats {
			sum += l
		}
		if len(lats) > 0 {
			sort.Float64s(lats)
			stat.MeanMs = sum / float64(len(lats))
			stat.P50Ms = lats[len(lats)/2]
			stat.CoeffOverMeasured = stat.CoeffMs / stat.MeanMs
		}
		if stat.CoeffOverMeasured < 0.5 || stat.CoeffOverMeasured > 2 {
			res.CoeffWithin2x = false
		}
		stat.Utility = controlAlphaMSL*stat.MSL*float64(stat.Served) -
			controlAlphaT*sum/1e3
		res.TotalUtility += stat.Utility
		res.Profiles = append(res.Profiles, stat)
	}
	return res, nil
}
