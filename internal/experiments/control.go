package experiments

import (
	"errors"
	"fmt"
	"time"

	"quhe/internal/control"
	"quhe/internal/costmodel"
	"quhe/internal/edge"
	"quhe/internal/he/profile"
	"quhe/internal/qkd"
	"quhe/internal/qnet"
	"quhe/internal/serve"
)

// ControlLoopOptions sizes the closed-loop serving experiment.
type ControlLoopOptions struct {
	// Clients is the concurrent session count. Default 2.
	Clients int
	// Blocks is the compute count per client. Default 16.
	Blocks int
	// StockBytes is each client's initial QKD key stock — small enough
	// that the run exhausts it. Default 160 (the initial withdrawal plus
	// four rekeys at 32 bytes each).
	StockBytes int
	// BaseRekeyBytes is the per-key byte budget at λ_ref. The default
	// 8192 forces a rekey every second padded block, so the static
	// scenario burns through its stock mid-run.
	BaseRekeyBytes int64
	// Interval is the controller's replanning period. Default 20ms.
	Interval time.Duration
	// Pace is a delay between block rounds (not counted as serving
	// latency) giving the periodic controller a realistic duty cycle
	// relative to the workload. Default 5ms.
	Pace time.Duration
	// Workers sizes the server pool. Default 2.
	Workers int
	// Network is the quantum network the controller plans over. Default
	// qnet.SURFnet(). Tests pass a scaled-down topology to pin the
	// key-scarcity regime independently of how fast the serving plane
	// happens to drain blocks.
	Network *qnet.Network
}

func (o ControlLoopOptions) withDefaults() ControlLoopOptions {
	if o.Clients <= 0 {
		o.Clients = 2
	}
	if o.Blocks <= 0 {
		o.Blocks = 16
	}
	if o.StockBytes <= 0 {
		o.StockBytes = 5 * edge.RekeyWithdrawBytes
	}
	if o.BaseRekeyBytes <= 0 {
		o.BaseRekeyBytes = 8192
	}
	if o.Interval <= 0 {
		o.Interval = 20 * time.Millisecond
	}
	if o.Pace <= 0 {
		o.Pace = 5 * time.Millisecond
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Network == nil {
		o.Network = qnet.SURFnet()
	}
	return o
}

// ControlScenario reports one serving run of the experiment.
type ControlScenario struct {
	Name string `json:"name"`
	// Served counts completed blocks; Denied the typed admission sheds
	// (CodeAdmissionDenied, dynamic only); Stranded the blocks lost to
	// key exhaustion (rekey demanded but the pool cannot fund it — the
	// static scenario's failure mode); Errors everything else.
	Served   int64 `json:"served"`
	Denied   int64 `json:"denied"`
	Stranded int64 `json:"stranded"`
	Errors   int64 `json:"errors"`
	// Rekeys counts completed rotations; KeyBytesLeft the stock remaining
	// across every client pool at the end of the run.
	Rekeys       int64 `json:"rekeys"`
	KeyBytesLeft int   `json:"key_bytes_left"`
	// Lambda / MSL / RekeyBudget are the security plan the run ended on
	// (the static scenario pins λ_ref and the constant budget).
	Lambda      float64 `json:"lambda"`
	MSL         float64 `json:"msl"`
	RekeyBudget int64   `json:"rekey_budget"`
	// LatencySumS sums per-block client-observed latency.
	LatencySumS float64 `json:"latency_sum_s"`
	// Utility is the run's utility-cost score: α_msl·f_msl(λ)·served −
	// α_T·Σlatency, the security and delay terms of Eq. (17) accumulated
	// over the run.
	Utility float64 `json:"utility"`
}

// ControlLoopResult compares the static-budget baseline against the
// controller-driven run.
type ControlLoopResult struct {
	Static  ControlScenario `json:"static"`
	Dynamic ControlScenario `json:"dynamic"`
	// UtilityGain is Dynamic.Utility − Static.Utility (positive when the
	// control loop pays off).
	UtilityGain float64 `json:"utility_gain"`
	// PlanSeq is how many plans the controller published during its run.
	PlanSeq uint64 `json:"plan_seq"`
}

// Utility-cost weights of the run score: the calibrated α_msl of §VI-A
// (see internal/core) and the paper's delay weight scale.
const (
	controlAlphaMSL = 5e-2
	controlAlphaT   = 0.4
)

func scenarioUtility(lambda float64, served int64, latencySumS float64) float64 {
	return controlAlphaMSL*costmodel.MinSecurityLevel(lambda)*float64(served) -
		controlAlphaT*latencySumS
}

// ControlLoop runs the closed-loop experiment: the same finite-key
// serving workload twice — once with the static per-key budget constant
// (admit-until-evicted, the pre-control runtime) and once with the
// control plane re-planning budgets, provisioning and admission online —
// and scores both with the paper's utility-cost terms. The static run
// burns its key stock at the constant rekey cadence and strands once the
// pool is dry; the controller stretches budgets to the cadence the key
// plane sustains and sheds what it cannot fund with typed admission
// denials instead of stalling.
func ControlLoop(opts ControlLoopOptions) (ControlLoopResult, error) {
	opts = opts.withDefaults()
	var res ControlLoopResult
	var err error
	if res.Static, _, err = runControlScenario("static", false, opts); err != nil {
		return res, err
	}
	var planSeq uint64
	if res.Dynamic, planSeq, err = runControlScenario("dynamic", true, opts); err != nil {
		return res, err
	}
	res.PlanSeq = planSeq
	res.UtilityGain = res.Dynamic.Utility - res.Static.Utility
	return res, nil
}

func runControlScenario(name string, dynamic bool, opts ControlLoopOptions) (ControlScenario, uint64, error) {
	sc := ControlScenario{Name: name, Lambda: control.LambdaRef}
	network := opts.Network
	kc := qkd.NewKeyCenter()
	ids := make([]string, opts.Clients)
	for i := range ids {
		ids[i] = fmt.Sprintf("%s-%d", name, i)
		if err := kc.Provision(ids[i], 64); err != nil {
			return sc, 0, err
		}
		if err := kc.Deposit(ids[i], make([]byte, opts.StockBytes)); err != nil {
			return sc, 0, err
		}
	}

	cfg := edge.ServerConfig{
		Model:   edge.Model{Weights: []float64{0.5}, Bias: []float64{0.1}},
		Workers: opts.Workers,
	}
	var ctl *control.Controller
	if dynamic {
		var err error
		ctl, err = control.New(control.Config{
			Network:        network,
			KeyCenter:      kc,
			Interval:       opts.Interval,
			BaseRekeyBytes: opts.BaseRekeyBytes,
		})
		if err != nil {
			return sc, 0, err
		}
		ctl.Start()
		defer ctl.Stop()
		cfg.Control = ctl
	} else {
		cfg.RekeyBytes = control.DeriveRekeyBudget(opts.BaseRekeyBytes, control.LambdaRef)
	}
	srv, err := edge.NewServer("127.0.0.1:0", cfg)
	if err != nil {
		return sc, 0, err
	}
	defer srv.Close()

	clients := make([]*edge.Client, opts.Clients)
	for i, id := range ids {
		// Both scenarios pin the default security profile: this
		// experiment isolates the budget/admission loop, so the λ
		// actuation (which would otherwise steer the dynamic run to the
		// plan's higher-λ profile and change its compute cost) is held
		// fixed — experiments.ProfileMix covers the mixed-λ axis.
		c, err := edge.DialQKDWith(srv.Addr(), id, kc, int64(100+i),
			edge.DialConfig{Profile: profile.Default().DefaultID()})
		if err != nil {
			return sc, 0, fmt.Errorf("dial %s: %w", id, err)
		}
		defer c.Close()
		clients[i] = c
	}

	data := []float64{0.25, 0.5}
	for blk := 0; blk < opts.Blocks; blk++ {
		if blk > 0 {
			time.Sleep(opts.Pace)
		}
		for _, c := range clients {
			t0 := time.Now()
			_, err := c.Compute(uint32(blk), data)
			lat := time.Since(t0).Seconds()
			switch {
			case err == nil:
				sc.Served++
				sc.LatencySumS += lat
			case errors.Is(err, serve.ErrAdmissionDenied):
				sc.Denied++
			case errors.Is(err, serve.ErrRekeyRequired) || errors.Is(err, qkd.ErrInsufficientKey):
				sc.Stranded++
			default:
				sc.Errors++
			}
		}
	}

	for _, id := range ids {
		if st, ok := srv.SessionStats(id); ok {
			sc.Rekeys += st.Rekeys
		}
		if avail, err := kc.Available(id); err == nil {
			sc.KeyBytesLeft += avail
		}
	}
	var planSeq uint64
	if dynamic {
		plan := ctl.Plan()
		planSeq = plan.Seq
		sc.Lambda, sc.MSL = plan.Lambda, plan.MSL
		sc.RekeyBudget = plan.DefaultRekeyBudget
		for _, id := range ids {
			if b := plan.RekeyBudget[id]; b > sc.RekeyBudget {
				sc.RekeyBudget = b // report the stretched per-session budget
			}
		}
	} else {
		sc.MSL = costmodel.MinSecurityLevel(sc.Lambda)
		sc.RekeyBudget = cfg.RekeyBytes
	}
	sc.Utility = scenarioUtility(sc.Lambda, sc.Served, sc.LatencySumS)
	return sc, planSeq, nil
}
