package experiments

import (
	"testing"
	"time"

	"quhe/internal/qnet"
)

// scarceKeyNetwork is SURFnet with every link's entanglement rate scaled
// down 10x: the same topology the paper evaluates, in the key-scarce
// regime where the static rekey cadence is clearly unsustainable. Pinning
// scarcity in the network (rather than in the workload's timing) keeps
// the dynamic-vs-static comparison deterministic no matter how fast the
// serving plane drains blocks on the test machine.
func scarceKeyNetwork(t *testing.T) *qnet.Network {
	t.Helper()
	ref := qnet.SURFnet()
	links := make([]qnet.Link, ref.NumLinks())
	for l := range links {
		links[l] = ref.Link(l)
		links[l].Beta /= 10
	}
	routes := make([]qnet.Route, ref.NumRoutes())
	for r := range routes {
		routes[r] = ref.Route(r)
	}
	net, err := qnet.New(links, routes)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestControlLoopDynamicBeatsStatic runs the closed-loop experiment at
// reduced size and asserts the qualitative claim the bench quantifies:
// under a finite key stock the static budget strands blocks once the pool
// is dry, while the control plane adapts the rekey cadence (or sheds with
// typed denials) and ends with strictly higher utility.
func TestControlLoopDynamicBeatsStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("serving-plane experiment")
	}
	// Sized for the depth-4 residue towers: blocks cost ~3x the old
	// single-modulus chains, which lowers the observed demand rate and
	// with it the controller's rate-based budget stretch. The scarce-key
	// network keeps the stretch decision decisive at the slower block
	// rate instead of leaving it on the demand-threshold knife edge.
	res, err := ControlLoop(ControlLoopOptions{
		Clients:  2,
		Blocks:   16,
		Interval: 15 * time.Millisecond,
		Pace:     2 * time.Millisecond,
		Network:  scarceKeyNetwork(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Static.Stranded == 0 {
		t.Errorf("static scenario never exhausted its key stock (served %d, rekeys %d, stock left %d) — the experiment lost its point",
			res.Static.Served, res.Static.Rekeys, res.Static.KeyBytesLeft)
	}
	if res.Static.Errors != 0 || res.Dynamic.Errors != 0 {
		t.Errorf("unexpected hard errors: static %d, dynamic %d", res.Static.Errors, res.Dynamic.Errors)
	}
	if res.Dynamic.Served <= res.Static.Served {
		t.Errorf("dynamic served %d, static %d — control loop did not help", res.Dynamic.Served, res.Static.Served)
	}
	if res.UtilityGain <= 0 {
		t.Errorf("utility gain %g, want > 0 (dynamic %g, static %g)",
			res.UtilityGain, res.Dynamic.Utility, res.Static.Utility)
	}
	// Losses under control are typed admission denials, never the
	// static scenario's strand-on-exhaustion failure mode.
	if res.Dynamic.Stranded >= res.Static.Stranded {
		t.Errorf("dynamic stranded %d blocks, static %d — budgets did not adapt", res.Dynamic.Stranded, res.Static.Stranded)
	}
	if res.PlanSeq < 2 {
		t.Errorf("controller published %d plans, want ≥ 2", res.PlanSeq)
	}
}
