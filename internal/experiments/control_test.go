package experiments

import (
	"testing"
	"time"
)

// TestControlLoopDynamicBeatsStatic runs the closed-loop experiment at
// reduced size and asserts the qualitative claim the bench quantifies:
// under a finite key stock the static budget strands blocks once the pool
// is dry, while the control plane adapts the rekey cadence (or sheds with
// typed denials) and ends with strictly higher utility.
func TestControlLoopDynamicBeatsStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("serving-plane experiment")
	}
	res, err := ControlLoop(ControlLoopOptions{
		Clients:  2,
		Blocks:   12,
		Interval: 15 * time.Millisecond,
		Pace:     5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Static.Stranded == 0 {
		t.Errorf("static scenario never exhausted its key stock (served %d, rekeys %d, stock left %d) — the experiment lost its point",
			res.Static.Served, res.Static.Rekeys, res.Static.KeyBytesLeft)
	}
	if res.Static.Errors != 0 || res.Dynamic.Errors != 0 {
		t.Errorf("unexpected hard errors: static %d, dynamic %d", res.Static.Errors, res.Dynamic.Errors)
	}
	if res.Dynamic.Served <= res.Static.Served {
		t.Errorf("dynamic served %d, static %d — control loop did not help", res.Dynamic.Served, res.Static.Served)
	}
	if res.UtilityGain <= 0 {
		t.Errorf("utility gain %g, want > 0 (dynamic %g, static %g)",
			res.UtilityGain, res.Dynamic.Utility, res.Static.Utility)
	}
	// Losses under control are typed admission denials, never the
	// static scenario's strand-on-exhaustion failure mode.
	if res.Dynamic.Stranded >= res.Static.Stranded {
		t.Errorf("dynamic stranded %d blocks, static %d — budgets did not adapt", res.Dynamic.Stranded, res.Static.Stranded)
	}
	if res.PlanSeq < 2 {
		t.Errorf("controller published %d plans, want ≥ 2", res.PlanSeq)
	}
}
