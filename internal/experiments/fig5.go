package experiments

import (
	"fmt"
	"time"

	"quhe/internal/core"
)

// Fig5aResult reports stage call counts and runtimes for one full QuHE run
// (Fig. 5(a): one call per stage, total ~seconds).
type Fig5aResult struct {
	Calls        [3]int
	StageRuntime [3]time.Duration
	Total        time.Duration
	Objective    float64
}

// Fig5a runs the whole QuHE procedure and reports per-stage accounting.
func Fig5a(cfg *core.Config) (Fig5aResult, error) {
	var res Fig5aResult
	out, err := cfg.SolveQuHE(core.QuHEOptions{})
	if err != nil {
		return res, fmt.Errorf("experiments: fig5a: %w", err)
	}
	res.Calls = out.StageCalls
	res.StageRuntime = out.StageRuntime
	res.Total = out.Runtime
	res.Objective = out.Eval.Objective
	return res, nil
}

// Stage1Comparison is one row of Figs. 5(b)/(c) and Tables V/VI: a Stage-1
// method with its runtime, objective value and solution.
type Stage1Comparison struct {
	Method  string
	Runtime time.Duration
	// Objective is the minimized P2 value (Fig. 5(c); lower is better).
	Objective float64
	Phi       []float64
	W         []float64
}

// Stage1Methods runs all four Stage-1 solvers (QuHE barrier, gradient
// descent, simulated annealing, random selection) and returns one
// comparison row per method — the data behind Figs. 5(b)/(c) and
// Tables V/VI.
func Stage1Methods(cfg *core.Config, seed int64) ([]Stage1Comparison, error) {
	methods := []core.Stage1Method{
		core.Stage1Barrier, core.Stage1GD, core.Stage1SA, core.Stage1RS,
	}
	out := make([]Stage1Comparison, 0, len(methods))
	for _, m := range methods {
		r, err := cfg.SolveStage1(core.Stage1Options{Method: m, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("experiments: stage-1 method %s: %w", m, err)
		}
		out = append(out, Stage1Comparison{
			Method:    m.String(),
			Runtime:   r.Runtime,
			Objective: r.Objective,
			Phi:       r.Phi,
			W:         r.W,
		})
	}
	return out, nil
}

// Fig5dRow is one bar group of Fig. 5(d): a whole-procedure method with its
// energy, delay, security level and objective.
type Fig5dRow struct {
	Method    string
	Energy    float64
	Delay     float64
	UMSL      float64
	Objective float64
}

// Fig5d compares AA, OLAA, OCCR and QuHE on the four metrics of Fig. 5(d).
func Fig5d(cfg *core.Config) ([]Fig5dRow, error) {
	rows := make([]Fig5dRow, 0, 4)
	for _, k := range []core.BaselineKind{core.BaselineAA, core.BaselineOLAA, core.BaselineOCCR} {
		r, err := cfg.SolveBaseline(k)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig5d %s: %w", k, err)
		}
		rows = append(rows, Fig5dRow{
			Method: k.String(), Energy: r.Eval.Energy, Delay: r.Eval.Delay,
			UMSL: r.Eval.UMSL, Objective: r.Eval.Objective,
		})
	}
	q, err := cfg.SolveQuHE(core.QuHEOptions{})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig5d QuHE: %w", err)
	}
	rows = append(rows, Fig5dRow{
		Method: "QuHE", Energy: q.Eval.Energy, Delay: q.Eval.Delay,
		UMSL: q.Eval.UMSL, Objective: q.Eval.Objective,
	})
	return rows, nil
}
