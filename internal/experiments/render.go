package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Render writes the table as aligned ASCII columns.
func (t Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	printRow(t.Header)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		printRow(row)
	}
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// RenderSeries writes a sweep result as one row per x value with a column
// per method, in SweepMethods order.
func RenderSeries(w io.Writer, s SweepResult) {
	fmt.Fprintf(w, "Fig. 6 sweep: %s\n", s.XLabel)
	t := Table{Header: append([]string{s.XLabel}, SweepMethods...)}
	for i, x := range s.Xs {
		row := []string{formatSI(x)}
		for _, m := range SweepMethods {
			row = append(row, strconv.FormatFloat(s.Series[m][i], 'f', 3, 64))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Render(w)
}

// RenderHistogram writes the Fig. 3(b)-style bucket counts.
func RenderHistogram(w io.Writer, edges []float64, counts []int) {
	maxCount := 1
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range counts {
		bar := strings.Repeat("#", c*40/maxCount)
		fmt.Fprintf(w, "[%6.1f, %6.1f)  %4d  %s\n", edges[i], edges[i+1], c, bar)
	}
}

// RenderTrace prints a convergence trace, sub-sampled to at most maxPoints.
func RenderTrace(w io.Writer, name string, trace []float64, maxPoints int) {
	if maxPoints <= 0 {
		maxPoints = 20
	}
	fmt.Fprintf(w, "%s (%d iterations):\n", name, len(trace))
	if len(trace) == 0 {
		fmt.Fprintln(w, "  (empty)")
		return
	}
	step := 1
	if len(trace) > maxPoints {
		step = len(trace) / maxPoints
	}
	for i := 0; i < len(trace); i += step {
		fmt.Fprintf(w, "  iter %4d: %.6g\n", i, trace[i])
	}
	if (len(trace)-1)%step != 0 {
		fmt.Fprintf(w, "  iter %4d: %.6g\n", len(trace)-1, trace[len(trace)-1])
	}
}

// formatSI renders large magnitudes compactly (1.5e7 → "1.50e7"; small
// values in plain decimal).
func formatSI(x float64) string {
	if x >= 1e5 || (x > 0 && x < 1e-3) {
		return strconv.FormatFloat(x, 'e', 2, 64)
	}
	return strconv.FormatFloat(x, 'g', 4, 64)
}
