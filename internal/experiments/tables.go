package experiments

import (
	"fmt"
	"strconv"

	"quhe/internal/core"
	"quhe/internal/qnet"
)

// Table is a rendered-friendly table: a title, a header row and body rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Table5 regenerates Table V: the optimal φ values found by each Stage-1
// method (QuHE Stage 1, gradient descent, simulated annealing, random
// selection).
func Table5(cfg *core.Config, seed int64) (Table, error) {
	comps, err := Stage1Methods(cfg, seed)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:  "Table V: phi values of different methods",
		Header: []string{"phi_n", "QuHE Stage 1", "Gradient descent", "Sim. annealing", "Random select"},
	}
	n := cfg.N()
	for i := 0; i < n; i++ {
		row := []string{fmt.Sprintf("phi_%d", i+1)}
		for _, c := range comps {
			row = append(row, strconv.FormatFloat(c.Phi[i], 'f', 4, 64))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table6 regenerates Table VI: the optimal w values per Stage-1 method.
func Table6(cfg *core.Config, seed int64) (Table, error) {
	comps, err := Stage1Methods(cfg, seed)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:  "Table VI: w values of different methods",
		Header: []string{"w_l", "QuHE Stage 1", "Gradient descent", "Sim. annealing", "Random select"},
	}
	for l := 0; l < cfg.Net.NumLinks(); l++ {
		row := []string{fmt.Sprintf("w_%d", l+1)}
		for _, c := range comps {
			row = append(row, strconv.FormatFloat(c.W[l], 'f', 4, 64))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// TopologyTables regenerates the input Tables III (routes) and IV (link
// lengths and β) from the embedded SURFnet data.
func TopologyTables(net *qnet.Network) (routes, links Table) {
	routes = Table{
		Title:  "Table III: routes with end nodes and links",
		Header: []string{"Route ID", "End nodes", "Links"},
	}
	for r := 0; r < net.NumRoutes(); r++ {
		rt := net.Route(r)
		ids := ""
		for i, id := range rt.LinkIDs {
			if i > 0 {
				ids += ", "
			}
			ids += strconv.Itoa(id)
		}
		routes.Rows = append(routes.Rows, []string{
			strconv.Itoa(rt.ID),
			fmt.Sprintf("(%s, %s)", rt.Source, rt.Dest),
			"(" + ids + ")",
		})
	}
	links = Table{
		Title:  "Table IV: link lengths and beta_l",
		Header: []string{"Link ID", "Length (km)", "beta_l"},
	}
	for l := 0; l < net.NumLinks(); l++ {
		lk := net.Link(l)
		links.Rows = append(links.Rows, []string{
			strconv.Itoa(lk.ID),
			strconv.FormatFloat(lk.LengthKm, 'f', 1, 64),
			strconv.FormatFloat(lk.Beta, 'f', 2, 64),
		})
	}
	return routes, links
}
