package experiments

import "testing"

// TestProfileMixServesAllLevels runs the mixed-security workload at
// reduced size: every profile serves correct results side by side, and
// the calibrated cost coefficients land within 2x of measured latency.
func TestProfileMixServesAllLevels(t *testing.T) {
	if testing.Short() {
		t.Skip("serving-plane experiment")
	}
	res, err := ProfileMix(ProfileMixOptions{Blocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profiles) != 3 {
		t.Fatalf("%d profiles in result, want 3", len(res.Profiles))
	}
	for _, p := range res.Profiles {
		if p.Errors != 0 {
			t.Errorf("%s: %d errors", p.Profile, p.Errors)
		}
		if p.Served != 4 {
			t.Errorf("%s: served %d, want 4", p.Profile, p.Served)
		}
		if p.CoeffMs <= 0 || p.MeanMs <= 0 {
			t.Errorf("%s: empty latency stats %+v", p.Profile, p)
		}
	}
	// Higher λ must cost more: the measured mean latency is increasing
	// across the ascending-λ result order.
	for i := 1; i < len(res.Profiles); i++ {
		if res.Profiles[i].MeanMs <= res.Profiles[i-1].MeanMs {
			t.Errorf("latency not increasing with λ: %s %.2fms after %s %.2fms",
				res.Profiles[i].Profile, res.Profiles[i].MeanMs,
				res.Profiles[i-1].Profile, res.Profiles[i-1].MeanMs)
		}
	}
	if !res.CoeffWithin2x {
		t.Logf("coefficients out of the 2x band on this host: %+v", res.Profiles)
	}
}
