package experiments

import (
	"fmt"
	"math/rand"

	"quhe/internal/core"
	"quhe/internal/mathutil"
)

// Fig3Edges are the histogram bucket edges of Fig. 3(b):
// [−25,−10), [−10,−5), [−5,0), [0,5), [5,10), [10,15).
var Fig3Edges = []float64{-25, -10, -5, 0, 5, 10, 15}

// Fig3Result is the optimality study of Fig. 3: the QuHE objective across
// uniformly sampled initial configurations of bandwidth, power and CPU
// frequencies.
type Fig3Result struct {
	// Values holds the final P1 objective per sample (Fig. 3(a)).
	Values []float64
	// Edges and Buckets form the histogram of Fig. 3(b).
	Edges   []float64
	Buckets []int
	// Summary holds max/min/mean of the objective values.
	Summary mathutil.Summary
	// VeryGood is the fraction of samples in [10, 15); GoodOrBetter the
	// fraction at or above the "good" threshold 5 (the paper reports 56%
	// and 88% respectively).
	VeryGood     float64
	GoodOrBetter float64
}

// Fig3 reruns the paper's 100-sample optimality experiment: each sample
// draws a uniform initial (b, p, f_c, f_s), runs the full QuHE procedure and
// records the final objective.
func Fig3(cfg *core.Config, samples int, seed int64, workers int) (Fig3Result, error) {
	var res Fig3Result
	if samples <= 0 {
		samples = 100
	}
	if seed == 0 {
		seed = 1
	}
	// Pre-draw all starts from one seeded stream so results are
	// reproducible regardless of scheduling.
	rng := rand.New(rand.NewSource(seed))
	starts := make([]core.Variables, samples)
	for i := range starts {
		v, err := cfg.SampleVariables(rng)
		if err != nil {
			return res, fmt.Errorf("experiments: fig3 sample %d: %w", i, err)
		}
		starts[i] = v
	}

	res.Values = make([]float64, samples)
	err := parallelMap(samples, workers, func(i int) error {
		v := starts[i]
		out, err := cfg.SolveQuHE(core.QuHEOptions{Initial: &v})
		if err != nil {
			return fmt.Errorf("experiments: fig3 solve %d: %w", i, err)
		}
		res.Values[i] = out.Eval.Objective
		return nil
	})
	if err != nil {
		return res, err
	}

	res.Edges = mathutil.Clone(Fig3Edges)
	res.Buckets = mathutil.Histogram(res.Values, res.Edges)
	res.Summary = mathutil.Summarize(res.Values)
	res.VeryGood = mathutil.Fraction(res.Values, func(v float64) bool { return v >= 10 && v < 15 })
	res.GoodOrBetter = mathutil.Fraction(res.Values, func(v float64) bool { return v >= 5 })
	return res, nil
}
