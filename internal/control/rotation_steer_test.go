package control_test

import (
	"testing"
	"time"

	"quhe/internal/control"
	"quhe/internal/he/profile"
	"quhe/internal/qnet"
	"quhe/internal/serve"
)

// lambdaOf resolves a planned profile ID to its λ so tests can compare
// security levels ordinally.
func lambdaOf(t *testing.T, id string) float64 {
	t.Helper()
	p, ok := profile.Default().Get(id)
	if !ok {
		t.Fatalf("plan references unknown profile %q", id)
	}
	return p.Lambda
}

// TestRotationHeavyRouteSteersLambda is the rotation-aware control
// acceptance test: two routes report identical byte demand, but one
// serves BSGS matvec traffic whose per-block rotation fan-out is fed
// through ObserveRotations. The planner must price the hoisted
// key-switch work and step the matvec route's λ below the affine
// route's — same bytes, different cost.
func TestRotationHeavyRouteSteersLambda(t *testing.T) {
	net := qnet.SURFnet()
	ctl, err := control.New(control.Config{
		Network: net,
		RouteOf: routeByPrefix(net.NumRoutes()),
	})
	if err != nil {
		t.Fatal(err)
	}

	tel := ctl.Telemetry()
	// Two observation rounds so the second snapshot sees a byte delta
	// over a measurable dt. Route 1 is affine-only; route 2 carries the
	// same bytes but every block fans out into hoisted rotations.
	const blockBytes = 1 << 14
	const rotations = 1 << 12
	report := func() {
		tel.ObserveCompute("r1-affine", blockBytes, time.Millisecond, serve.CodeOK)
		tel.ObserveCompute("r2-matvec", blockBytes, time.Millisecond, serve.CodeOK)
		tel.ObserveRotations("r2-matvec", rotations)
	}
	report()
	if _, err := ctl.Replan(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	report()
	plan, err := ctl.Replan()
	if err != nil {
		t.Fatal(err)
	}

	affine := lambdaOf(t, plan.RouteProfile[1])
	matvec := lambdaOf(t, plan.RouteProfile[2])
	if matvec >= affine {
		t.Fatalf("rotation-heavy route planned λ=%.0f (%q), affine route λ=%.0f (%q); "+
			"want rotation cost to steer the matvec route below the affine route at equal bytes (RouteLambda=%v)",
			matvec, plan.RouteProfile[2], affine, plan.RouteProfile[1], plan.RouteLambda)
	}
	// The affine route's demand is deliberately modest: bytes alone must
	// not move it off the highest security level, so the matvec route's
	// step-down is attributable to the rotation term only.
	if plan.RouteProfile[1] != profile.IDLambda128k {
		t.Errorf("affine route moved to %q on bytes alone; rotation steering is untestable at this demand", plan.RouteProfile[1])
	}
	// Telemetry carries the rotation counts that drove the decision.
	snap := tel.Snapshot()
	for _, s := range snap.Sessions {
		if s.ID == "r2-matvec" && s.Rotations != 2*rotations {
			t.Errorf("session rotations = %d, want %d", s.Rotations, 2*rotations)
		}
		if s.ID == "r1-affine" && s.Rotations != 0 {
			t.Errorf("affine session recorded %d rotations", s.Rotations)
		}
	}
}
