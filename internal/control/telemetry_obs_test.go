package control_test

import (
	"strings"
	"testing"
	"time"

	"quhe/internal/control"
	"quhe/internal/he/profile"
	"quhe/internal/obs"
	"quhe/internal/qnet"
	"quhe/internal/serve"
)

// TestProfileLatencyWeightedByBlocks pins the aggregation fix: the
// per-profile latency mean weights each session by its served block
// count. A session serving 99 blocks at 10ms and a one-block straggler
// at 1000ms must aggregate near 10ms·0.99 + 1000ms·0.01 ≈ 19.9ms, not
// the unweighted (10+1000)/2 = 505ms the old running mean produced.
func TestProfileLatencyWeightedByBlocks(t *testing.T) {
	tel := control.NewTelemetry()
	tel.ObserveSession("busy", profile.IDLambda32k)
	tel.ObserveSession("straggler", profile.IDLambda32k)
	for i := 0; i < 99; i++ {
		tel.ObserveCompute("busy", 100, 10*time.Millisecond, serve.CodeOK)
	}
	tel.ObserveCompute("straggler", 100, time.Second, serve.CodeOK)
	snap := tel.Snapshot()
	ps := snap.Profiles[profile.IDLambda32k]
	// Each session's EWMA converges to its constant latency; the
	// blocks-weighted mean is then (99·10 + 1·1000)/100 = 19.9ms.
	if ps.LatencyEWMAMs < 10 || ps.LatencyEWMAMs > 60 {
		t.Fatalf("profile latency %gms: not blocks-weighted (want ≈19.9, unweighted bug gives ≈505)",
			ps.LatencyEWMAMs)
	}
}

// TestSnapshotLatencyQuantiles pins the histogram-quantile telemetry the
// replanner consumes: p50/p99 at session, profile and global scope.
func TestSnapshotLatencyQuantiles(t *testing.T) {
	tel := control.NewTelemetry()
	tel.ObserveSession("s", profile.IDLambda32k)
	for i := 0; i < 90; i++ {
		tel.ObserveCompute("s", 100, 10*time.Millisecond, serve.CodeOK)
	}
	for i := 0; i < 10; i++ {
		tel.ObserveCompute("s", 100, time.Second, serve.CodeOK)
	}
	snap := tel.Snapshot()
	if len(snap.Sessions) != 1 {
		t.Fatalf("want 1 session, got %d", len(snap.Sessions))
	}
	s := snap.Sessions[0]
	// p50 sits at the 10ms mode (bucket resolution ≤12.5% above); p99's
	// rank 99 of 100 lands in the 1s tail the EWMA smooths away.
	if s.LatencyP50Ms < 10 || s.LatencyP50Ms > 12 {
		t.Errorf("session p50 = %gms, want ≈10", s.LatencyP50Ms)
	}
	if s.LatencyP99Ms < 900 {
		t.Errorf("session p99 = %gms, must see the 1s tail", s.LatencyP99Ms)
	}
	ps := snap.Profiles[profile.IDLambda32k]
	if ps.LatencyP99Ms < 900 {
		t.Errorf("profile p99 = %gms, must see the 1s tail", ps.LatencyP99Ms)
	}
	if snap.LatencyP99Ms < 900 || snap.LatencyP50Ms > 12 {
		t.Errorf("global p50/p99 = %g/%gms", snap.LatencyP50Ms, snap.LatencyP99Ms)
	}
}

// TestControllerMetrics pins the control plane's instrumentation on the
// shared registry: replan counters/durations and key-centre series show
// up in the Prometheus exposition, and PlanJSON exposes the live plan.
func TestControllerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	ctl, err := control.New(control.Config{Network: qnet.SURFnet(), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Replan(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, "quhe_control_replans_total 2") {
		t.Errorf("replan counter missing or wrong:\n%s", text)
	}
	if !strings.Contains(text, "quhe_control_replan_seconds_count 2") {
		t.Errorf("replan duration histogram missing:\n%s", text)
	}
	if ctl.PlanJSON() == nil {
		t.Error("PlanJSON must expose the live plan")
	}
}
