// Package control is the closed-loop control plane of the QuHE serving
// stack: it connects the live serving runtime (internal/serve,
// internal/edge, internal/qkd) to the paper's utility-cost optimization
// program (internal/optimize, internal/costmodel, internal/qnet), so the
// resource knobs the runtime used to hard-code — the per-key rekey byte
// budget, the QKD provisioning rates, how much work to admit — are
// re-derived online from telemetry instead.
//
// # The loop: telemetry → plan → actuation
//
// Sense. Telemetry is the lock-cheap registry the serving plane publishes
// into. The edge server pushes one observation per served block
// (per-session byte counts and latency/payload EWMAs, a sync.Map load plus
// a few atomics on the hot path); the serve.Scheduler and serve.EvalPool
// are bound once at server construction and their queue-depth, shed-count
// and utilization gauges are read atomically at snapshot time; the
// qkd.KeyCenter contributes per-client key stock and provisioned rates
// (PoolStats). Telemetry.Snapshot folds all of it into one consistent view
// and derives per-session demand rates from byte deltas between snapshots.
//
// Plan. Controller.Replan re-solves the paper's program over the snapshot
// and publishes an immutable Plan through an atomic pointer:
//
//   - Plan.Phi / Plan.Werner — the Stage-1 entanglement-rate allocation:
//     projected gradient ascent on ln U_qkd (Eq. 6) over the box
//     [φ_min, φ_max] with link-capacity and SKF-threshold violations
//     (Eqs. 19a, 20c) rejected as infeasible; Werner parameters are the
//     capacity-saturating point w* of Eq. (18).
//   - Plan.Lambda / Plan.MSL — the aggregate CKKS degree chosen from the
//     discrete set (17d) by trading the importance-weighted security
//     utility α_msl·Σ ς_n·f_msl(λ) (Eqs. 9, 30) against the modeled
//     compute delay of the telemetry-predicted demand (Eqs. 13, 29, 31):
//     highest security at idle, stepping down as demand grows.
//   - Plan.RouteLambda / Plan.RouteProfile — the same tradeoff solved per
//     route against the route's own security weight and demand, actuated
//     through the security-profile registry (internal/he/profile): each
//     planned λ resolves to a runnable CKKS parameter set, and
//     NegotiateProfile steers every new session on the route to it. The
//     per-profile compute-delay term uses the registry's cost
//     coefficients, which calibration (profile.Calibrate) replaces with
//     live per-op measurements.
//   - Plan.DefaultRekeyBudget / Plan.RekeyBudget — per-session rekey byte
//     budgets derived from the security level via DeriveRekeyBudget
//     (budget scales with f_msl(λ), Eq. 30, relative to λ_ref = 2^15) and
//     stretched per session where the route's secret-key rate
//     φ_n·F_skf(̟_n) (Eq. 4) cannot fund the default's rekey cadence.
//   - Plan.AdmitCapacity / Plan.QueueHighWater — the admission envelope:
//     the session count whose next rotations the current key stock can
//     fund, and the scheduler occupancy above which work is shed before
//     the hard queue boundary.
//
// Actuate. Each replan provisions the key centre from the fresh allocation
// (qkd.KeyCenter.ProvisionFromAllocation, rate_n = φ_n·F_skf(̟_n)),
// applies the plan's queue high-water to the scheduler's live depth bound
// (serve.Scheduler.Resize) and its admission capacity to the session
// store's live cap (serve.Store.SetMaxSessions, never above the built
// ceiling), and the edge server reads the plan on its hot paths: profile
// negotiation consults NegotiateProfile (the per-route λ steering, with
// downgrade of requests above the plan), Setup consults AdmitSession
// (capacity + projected key consumption), compute and batch paths consult
// AdmitCompute (queue occupancy + whether an imminent rekey is fundable)
// and RekeyBudget (replacing the static edge.ServerConfig.RekeyBytes
// constant, derived from each session's actual profile λ). Denials are
// typed serve.ErrAdmissionDenied / serve.CodeAdmissionDenied on the wire,
// so clients distinguish a policy shed from transient overload — and the
// denied bytes still feed the demand EWMAs (Telemetry.ObserveShed), so a
// fully shed session keeps registering load instead of collapsing to the
// idle default budget.
//
// A nil controller on edge.ServerConfig.Control disables the whole loop
// and restores the static pre-control behavior bit-for-bit; the compat
// tests in internal/edge pin that.
package control
