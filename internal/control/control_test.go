package control_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quhe/internal/control"
	"quhe/internal/costmodel"
	"quhe/internal/edge"
	"quhe/internal/qkd"
	"quhe/internal/qnet"
	"quhe/internal/serve"
)

// The controller must satisfy the edge server's control-plane hook.
var _ edge.Controller = (*control.Controller)(nil)

// TestDeriveRekeyBudgetMonotoneInMSL is the satellite property test: the
// derived budget is monotone non-decreasing in f_msl(λ) — more HE
// security lets one key cover more bytes, never fewer — and never derives
// a positive base to zero.
func TestDeriveRekeyBudgetMonotoneInMSL(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const base = 1 << 20
	for trial := 0; trial < 500; trial++ {
		l1 := 32768 * (0.25 + 8*rng.Float64()) // λ from 2^13 to ~2^18
		l2 := 32768 * (0.25 + 8*rng.Float64())
		b1 := control.DeriveRekeyBudget(base, l1)
		b2 := control.DeriveRekeyBudget(base, l2)
		m1 := costmodel.MinSecurityLevel(l1)
		m2 := costmodel.MinSecurityLevel(l2)
		if m1 <= m2 && b1 > b2 {
			t.Fatalf("budget not monotone: msl %g→%d bytes, msl %g→%d bytes", m1, b1, m2, b2)
		}
		if m2 <= m1 && b2 > b1 {
			t.Fatalf("budget not monotone: msl %g→%d bytes, msl %g→%d bytes", m2, b2, m1, b1)
		}
		if b1 < 1 || b2 < 1 {
			t.Fatalf("positive base derived to non-positive budget: %d, %d", b1, b2)
		}
	}
	if got := control.DeriveRekeyBudget(base, control.LambdaRef); got != base {
		t.Errorf("budget at λ_ref = %d, want exactly base %d", got, base)
	}
	if got := control.DeriveRekeyBudget(0, control.LambdaRef); got != 0 {
		t.Errorf("zero base must stay disabled, got %d", got)
	}
}

func TestReplanFeasibleAndActuates(t *testing.T) {
	net := qnet.SURFnet()
	kc := qkd.NewKeyCenter()
	ctl, err := control.New(control.Config{Network: net, KeyCenter: kc})
	if err != nil {
		t.Fatal(err)
	}
	plan := ctl.Plan()
	if plan == nil {
		t.Fatal("no plan after New")
	}
	if !net.FeasibleRates(plan.Phi) {
		t.Errorf("plan allocation infeasible: %v", plan.Phi)
	}
	if plan.DefaultRekeyBudget < 1 {
		t.Errorf("default budget %d, want ≥ 1", plan.DefaultRekeyBudget)
	}
	if plan.MSL != costmodel.MinSecurityLevel(plan.Lambda) {
		t.Errorf("plan MSL %g inconsistent with λ %g", plan.MSL, plan.Lambda)
	}
	// Actuation: every route's client is provisioned with a positive
	// secret-key rate (the allocation keeps the SKF strictly positive).
	for r := 0; r < net.NumRoutes(); r++ {
		id := fmt.Sprintf("client-%d", r+1)
		rate, err := kc.Rate(id)
		if err != nil {
			t.Fatalf("route %d client unprovisioned: %v", r, err)
		}
		if rate <= 0 {
			t.Errorf("route %d provisioned with rate %g, want > 0", r, rate)
		}
	}
	// Replanning bumps the sequence and never loses the budget floor.
	p2, err := ctl.Replan()
	if err != nil {
		t.Fatal(err)
	}
	if p2.Seq <= plan.Seq {
		t.Errorf("replan seq %d not after %d", p2.Seq, plan.Seq)
	}
}

// TestBudgetTracksSecurityLevel pins the U_msl coupling end to end: a
// controller planning at a higher λ derives a proportionally larger
// per-key budget.
func TestBudgetTracksSecurityLevel(t *testing.T) {
	net := qnet.SURFnet()
	budgets := make([]int64, 0, 3)
	for _, lambda := range []float64{32768, 65536, 131072} {
		ctl, err := control.New(control.Config{
			Network: net, LambdaSet: []float64{lambda}, BaseRekeyBytes: 1 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		plan := ctl.Plan()
		if plan.Lambda != lambda {
			t.Fatalf("plan λ = %g, want %g (single-element set)", plan.Lambda, lambda)
		}
		want := control.DeriveRekeyBudget(1<<20, lambda)
		if plan.DefaultRekeyBudget != want {
			t.Errorf("λ=%g: budget %d, want %d", lambda, plan.DefaultRekeyBudget, want)
		}
		budgets = append(budgets, plan.DefaultRekeyBudget)
	}
	if !(budgets[0] < budgets[1] && budgets[1] < budgets[2]) {
		t.Errorf("budgets %v not increasing with λ", budgets)
	}
}

func TestAdmitSessionCapacityAndStock(t *testing.T) {
	net := qnet.SURFnet()
	kc := qkd.NewKeyCenter()
	if err := kc.Provision("funded", 0); err != nil {
		t.Fatal(err)
	}
	if err := kc.Deposit("funded", make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	if err := kc.Provision("starved", 0); err != nil {
		t.Fatal(err)
	}
	if err := kc.Deposit("starved", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	ctl, err := control.New(control.Config{Network: net, KeyCenter: kc, MaxSessions: 64})
	if err != nil {
		t.Fatal(err)
	}
	plan := ctl.Plan()
	if plan.AdmitCapacity < 1 {
		t.Fatalf("capacity %d, want ≥ 1", plan.AdmitCapacity)
	}
	if err := ctl.AdmitSession("funded", 0); err != nil {
		t.Errorf("funded session denied: %v", err)
	}
	if err := ctl.AdmitSession("starved", 0); !errors.Is(err, serve.ErrKeyExhausted) {
		t.Errorf("starved session err = %v, want ErrKeyExhausted", err)
	}
	// A provisioned rate turns the shortfall into a concrete retry hint.
	if err := kc.Provision("starved", 1000); err != nil {
		t.Fatal(err)
	}
	if d, ok := serve.RetryAfter(ctl.AdmitSession("starved", 0)); !ok || d <= 0 {
		t.Errorf("retry-after = (%v, %v), want a positive hint", d, ok)
	}
	// Over plan capacity every Setup is shed regardless of stock.
	if err := ctl.AdmitSession("funded", plan.AdmitCapacity); !errors.Is(err, serve.ErrAdmissionDenied) {
		t.Errorf("over-capacity err = %v, want ErrAdmissionDenied", err)
	}
	if ctl.Telemetry().Denied() < 2 {
		t.Errorf("denied counter %d, want ≥ 2", ctl.Telemetry().Denied())
	}
}

func TestAdmitComputeShedsUnfundableRekey(t *testing.T) {
	net := qnet.SURFnet()
	kc := qkd.NewKeyCenter()
	if err := kc.Provision("dry", 0); err != nil {
		t.Fatal(err)
	}
	ctl, err := control.New(control.Config{
		Network: net, KeyCenter: kc, BaseRekeyBytes: 1000, LambdaSet: []float64{32768},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Well inside the budget: admitted even with an empty pool.
	if err := ctl.AdmitCompute("dry", 0, 100); err != nil {
		t.Errorf("in-budget compute denied: %v", err)
	}
	// The block would cross the budget and the pool cannot fund the
	// rotation: shed with the typed denial instead of stranding the
	// client on CodeRekeyRequired.
	if err := ctl.AdmitCompute("dry", 900, 200); !errors.Is(err, serve.ErrKeyExhausted) {
		t.Errorf("unfundable-rekey compute err = %v, want ErrKeyExhausted", err)
	}
	// Same position with a funded pool: admitted (the normal
	// rekey-required flow takes over).
	if err := kc.Deposit("dry", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := ctl.AdmitCompute("dry", 900, 200); err != nil {
		t.Errorf("fundable-rekey compute denied: %v", err)
	}
}

// TestControlLoopConcurrentWithServing is the -race satellite: a
// controller replanning every 2ms (both from its own loop and from a
// hammering goroutine) concurrent with Setup, Compute and Rekey traffic
// must never deadlock and never expose a zero budget for any session.
func TestControlLoopConcurrentWithServing(t *testing.T) {
	if testing.Short() {
		t.Skip("serving-plane concurrency test")
	}
	network := qnet.SURFnet()
	kc := qkd.NewKeyCenter()
	const clients = 3
	ids := make([]string, clients)
	for i := range ids {
		ids[i] = fmt.Sprintf("race-%d", i)
		if err := kc.Provision(ids[i], 1000); err != nil {
			t.Fatal(err)
		}
		if err := kc.Deposit(ids[i], make([]byte, 64<<10)); err != nil {
			t.Fatal(err)
		}
	}
	ctl, err := control.New(control.Config{
		Network:        network,
		KeyCenter:      kc,
		Interval:       2 * time.Millisecond,
		BaseRekeyBytes: 2048, // below one padded block: every compute forces a rekey round
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	defer ctl.Stop()

	srv, err := edge.NewServer("127.0.0.1:0", edge.ServerConfig{
		Model:   edge.Model{Weights: []float64{1}},
		Workers: 2,
		Control: ctl,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var stop atomic.Bool
	var zeroBudget atomic.Int64
	var watcher sync.WaitGroup
	watcher.Add(2)
	go func() { // budget watcher: re-planning must never drop a budget to 0
		defer watcher.Done()
		for !stop.Load() {
			for _, id := range ids {
				if ctl.RekeyBudget(id) <= 0 {
					zeroBudget.Add(1)
				}
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()
	go func() { // replan hammer, concurrent with the Start loop
		defer watcher.Done()
		for !stop.Load() {
			if _, err := ctl.Replan(); err != nil {
				t.Errorf("replan: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := edge.DialQKD(srv.Addr(), ids[i], kc, int64(31+i))
			if err != nil {
				t.Errorf("dial %s: %v", ids[i], err)
				return
			}
			defer c.Close()
			for j := 0; j < 10; j++ {
				if _, err := c.Compute(uint32(j), []float64{0.25, 0.5}); err != nil {
					t.Errorf("%s compute %d: %v", ids[i], j, err)
					return
				}
				if j%4 == 3 {
					if err := c.Rekey(); err != nil {
						t.Errorf("%s rekey: %v", ids[i], err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	stop.Store(true)
	watcher.Wait()
	if n := zeroBudget.Load(); n != 0 {
		t.Errorf("observed a zero rekey budget %d times during re-planning", n)
	}
	if ctl.Plan().Seq < 2 {
		t.Errorf("controller barely replanned (seq %d) during the run", ctl.Plan().Seq)
	}
}
