package control_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"quhe/internal/control"
	"quhe/internal/edge"
	"quhe/internal/he/profile"
	"quhe/internal/qnet"
	"quhe/internal/serve"
)

// routeByPrefix maps session IDs of the form "r<route>-..." to their
// route, so tests can place sessions deterministically.
func routeByPrefix(routes int) func(string) int {
	return func(sessionID string) int {
		var r int
		if _, err := fmt.Sscanf(sessionID, "r%d-", &r); err != nil || r < 0 || r >= routes {
			return 0
		}
		return r
	}
}

// TestNegotiateProfileSteersAndDowngrades pins the negotiation contract:
// empty requests follow the plan's per-route profile, requests above the
// planned λ are downgraded to it, requests at or below pass, and unknown
// profiles are denied typed.
func TestNegotiateProfileSteersAndDowngrades(t *testing.T) {
	net := qnet.SURFnet()
	ctl, err := control.New(control.Config{Network: net, RouteOf: routeByPrefix(net.NumRoutes())})
	if err != nil {
		t.Fatal(err)
	}
	plan := ctl.Plan()
	if len(plan.RouteProfile) != net.NumRoutes() || len(plan.RouteLambda) != net.NumRoutes() {
		t.Fatalf("plan routes: %d profiles, %d lambdas, want %d each",
			len(plan.RouteProfile), len(plan.RouteLambda), net.NumRoutes())
	}
	// At idle every route runs the highest security level.
	for r, id := range plan.RouteProfile {
		if id != profile.IDLambda128k {
			t.Errorf("idle route %d planned %q, want %q", r, id, profile.IDLambda128k)
		}
	}
	got, err := ctl.NegotiateProfile("r0-steered", "")
	if err != nil || got != profile.IDLambda128k {
		t.Errorf("empty request → (%q, %v), want plan profile %q", got, err, profile.IDLambda128k)
	}
	// An explicit request at or below the plan is honored as asked.
	got, err = ctl.NegotiateProfile("r0-explicit", profile.IDLambda32k)
	if err != nil || got != profile.IDLambda32k {
		t.Errorf("explicit request → (%q, %v), want %q", got, err, profile.IDLambda32k)
	}
	// Unknown profiles are denied typed.
	if _, err := ctl.NegotiateProfile("r0-bogus", "no-such-profile"); !errors.Is(err, serve.ErrProfileDenied) {
		t.Errorf("unknown profile err = %v, want serve.ErrProfileDenied", err)
	}
}

// TestRoutePinnedByLambdaSet: a single-element LambdaSet pins every
// route's actuation to the matching profile, and requests above it are
// downgraded — the "server may downgrade per the active plan" rule.
func TestRoutePinnedByLambdaSet(t *testing.T) {
	net := qnet.SURFnet()
	ctl, err := control.New(control.Config{
		Network: net, LambdaSet: []float64{32768}, RouteOf: routeByPrefix(net.NumRoutes()),
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, id := range ctl.Plan().RouteProfile {
		if id != profile.IDLambda32k {
			t.Errorf("pinned route %d planned %q, want %q", r, id, profile.IDLambda32k)
		}
	}
	got, err := ctl.NegotiateProfile("r1-high", profile.IDLambda128k)
	if err != nil {
		t.Fatal(err)
	}
	if got != profile.IDLambda32k {
		t.Errorf("request above plan granted %q, want downgrade to %q", got, profile.IDLambda32k)
	}
}

// TestReplanMovesRouteLambda is the acceptance-criterion test: heavy
// demand reported for one route's sessions pulls that route's λ down on
// the next replan — and only that route — so the profile assigned to the
// next new session on the route changes while idle routes keep the
// highest level.
func TestReplanMovesRouteLambda(t *testing.T) {
	net := qnet.SURFnet()
	routes := net.NumRoutes()
	ctl, err := control.New(control.Config{
		Network: net,
		RouteOf: routeByPrefix(routes),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := ctl.NegotiateProfile("r1-before", ""); got != profile.IDLambda128k {
		t.Fatalf("pre-demand steering = %q, want %q", got, profile.IDLambda128k)
	}

	// Report crushing demand on route 1: two observation rounds so the
	// second snapshot sees a byte delta over a measurable dt.
	tel := ctl.Telemetry()
	tel.ObserveCompute("r1-hot", 1<<26, 5*time.Millisecond, serve.CodeOK)
	if _, err := ctl.Replan(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	tel.ObserveCompute("r1-hot", 1<<26, 5*time.Millisecond, serve.CodeOK)
	plan, err := ctl.Replan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.RouteProfile[1] == profile.IDLambda128k {
		t.Fatalf("route 1 still planned %q under %.0f B/s demand; RouteLambda=%v",
			plan.RouteProfile[1], plan.DemandBytesPerSec, plan.RouteLambda)
	}
	for r := 0; r < routes; r++ {
		if r != 1 && plan.RouteProfile[r] != profile.IDLambda128k {
			t.Errorf("idle route %d moved to %q", r, plan.RouteProfile[r])
		}
	}
	// The next new session on route 1 is steered to the new profile.
	got, err := ctl.NegotiateProfile("r1-after", "")
	if err != nil {
		t.Fatal(err)
	}
	if got != plan.RouteProfile[1] {
		t.Errorf("post-replan steering = %q, want plan's %q", got, plan.RouteProfile[1])
	}
}

// TestReplanSteersNextSessionEndToEnd is the full acceptance loop over a
// live server: a controller replan that moves a route's λ changes the
// profile assigned to the next new session dialing on that route, while
// the earlier session keeps the profile it registered on.
func TestReplanSteersNextSessionEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("serving-plane integration test")
	}
	net := qnet.SURFnet()
	ctl, err := control.New(control.Config{
		Network: net,
		RouteOf: routeByPrefix(net.NumRoutes()),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := edge.NewServer("127.0.0.1:0", edge.ServerConfig{
		Model:   edge.Model{Weights: []float64{1}},
		Workers: 2,
		Control: ctl,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// First session on route 2: steered to the idle plan's highest level.
	first, err := edge.Dial(srv.Addr(), "r2-first", []byte("k"), 51)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if got := first.Profile(); got != profile.IDLambda128k {
		t.Fatalf("first session profile = %q, want %q", got, profile.IDLambda128k)
	}
	if _, err := first.Compute(0, []float64{0.5}); err != nil {
		t.Fatalf("first session compute: %v", err)
	}

	// Crushing demand lands on route 2; the next replan moves its λ down.
	tel := ctl.Telemetry()
	tel.ObserveCompute("r2-hot", 1<<26, 5*time.Millisecond, serve.CodeOK)
	if _, err := ctl.Replan(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	tel.ObserveCompute("r2-hot", 1<<26, 5*time.Millisecond, serve.CodeOK)
	plan, err := ctl.Replan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.RouteProfile[2] == profile.IDLambda128k {
		t.Fatalf("route 2 still planned %q after demand surge", plan.RouteProfile[2])
	}

	// The next new session on the route lands on the moved profile...
	second, err := edge.Dial(srv.Addr(), "r2-second", []byte("k"), 52)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if got := second.Profile(); got != plan.RouteProfile[2] {
		t.Errorf("second session profile = %q, want plan's %q", got, plan.RouteProfile[2])
	}
	if _, err := second.Compute(0, []float64{0.5}); err != nil {
		t.Fatalf("second session compute: %v", err)
	}
	// ...while the first keeps what it registered on, and the server
	// tracks both.
	if got, _ := srv.SessionProfile("r2-first"); got != profile.IDLambda128k {
		t.Errorf("first session migrated to %q", got)
	}
	if got, _ := srv.SessionProfile("r2-second"); got != plan.RouteProfile[2] {
		t.Errorf("server records %q for second session, want %q", got, plan.RouteProfile[2])
	}
}

// TestShedTrafficFeedsDemand is the demand-predictor satellite: admission
// denials must register as demand, so a fully shed session does not look
// idle to the planner.
func TestShedTrafficFeedsDemand(t *testing.T) {
	net := qnet.SURFnet()
	ctl, err := control.New(control.Config{Network: net})
	if err != nil {
		t.Fatal(err)
	}
	tel := ctl.Telemetry()
	tel.ObserveShed("shed-only", 1<<20)
	if _, err := ctl.Replan(); err != nil { // baseline snapshot for the session
		t.Fatal(err)
	}
	tel.ObserveShed("shed-only", 1<<20)
	time.Sleep(10 * time.Millisecond)
	plan, err := ctl.Replan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.DemandBytesPerSec <= 0 {
		t.Errorf("demand %.0f B/s after shed-only traffic, want > 0", plan.DemandBytesPerSec)
	}
	snap := tel.Snapshot()
	var found bool
	for _, s := range snap.Sessions {
		if s.ID == "shed-only" {
			found = true
			if s.ShedBytes != 2<<20 {
				t.Errorf("ShedBytes = %d, want %d", s.ShedBytes, 2<<20)
			}
			if s.Bytes != 0 {
				t.Errorf("shed traffic leaked into served bytes: %d", s.Bytes)
			}
		}
	}
	if !found {
		t.Error("shed-only session missing from snapshot")
	}
}

// TestProfileTelemetryAggregates pins the per-profile telemetry export:
// sessions registered on distinct profiles aggregate separately.
func TestProfileTelemetryAggregates(t *testing.T) {
	tel := control.NewTelemetry()
	tel.ObserveSession("a", profile.IDLambda32k)
	tel.ObserveSession("b", profile.IDLambda64k)
	tel.ObserveSession("c", profile.IDLambda64k)
	tel.ObserveCompute("a", 100, time.Millisecond, serve.CodeOK)
	tel.ObserveCompute("b", 200, 2*time.Millisecond, serve.CodeOK)
	tel.ObserveCompute("c", 300, 4*time.Millisecond, serve.CodeOK)
	snap := tel.Snapshot()
	lo := snap.Profiles[profile.IDLambda32k]
	hi := snap.Profiles[profile.IDLambda64k]
	if lo.Sessions != 1 || hi.Sessions != 2 {
		t.Errorf("profile session counts: %d/%d, want 1/2", lo.Sessions, hi.Sessions)
	}
	if lo.Bytes != 100 || hi.Bytes != 500 {
		t.Errorf("profile byte totals: %d/%d, want 100/500", lo.Bytes, hi.Bytes)
	}
	if tel.SessionProfile("b") != profile.IDLambda64k {
		t.Errorf("SessionProfile(b) = %q", tel.SessionProfile("b"))
	}
}

// TestReplanActuatesSchedulerAndStore is the controller-resizing
// satellite: a replan moves the live scheduler depth to the plan's
// high-water and the store's session cap to the admission capacity
// (clamped to the built ceiling).
func TestReplanActuatesSchedulerAndStore(t *testing.T) {
	net := qnet.SURFnet()
	ctl, err := control.New(control.Config{Network: net, MaxSessions: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := edge.NewServer("127.0.0.1:0", edge.ServerConfig{
		Model:       edge.Model{Weights: []float64{1}},
		Workers:     2,
		QueueDepth:  16,
		MaxSessions: 64,
		Control:     ctl,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	plan, err := ctl.Replan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.QueueHighWater != 12 {
		t.Errorf("high-water %d, want 12 (3/4 of built 16)", plan.QueueHighWater)
	}
	// The live scheduler bound and session cap now carry the plan. The
	// server exposes neither directly, so assert through the controller's
	// next plan (QueueHighWater derives from MaxCapacity, which must be
	// unchanged) and through observable admission behavior below.
	plan2, err := ctl.Replan()
	if err != nil {
		t.Fatal(err)
	}
	if plan2.QueueHighWater != 12 {
		t.Errorf("high-water decayed to %d after resize — computed from live instead of built capacity", plan2.QueueHighWater)
	}
	if plan2.AdmitCapacity != 4 {
		t.Errorf("admit capacity %d, want MaxSessions 4", plan2.AdmitCapacity)
	}
}
