package control

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"quhe/internal/costmodel"
	"quhe/internal/he/profile"
	"quhe/internal/obs"
	"quhe/internal/optimize"
	"quhe/internal/qkd"
	"quhe/internal/qnet"
	"quhe/internal/serve"
)

// Config parameterizes a Controller.
type Config struct {
	// Network is the QKD topology whose routes the allocation is solved
	// over. Required.
	Network *qnet.Network
	// KeyCenter, when set, is actuated on every replan
	// (ProvisionFromAllocation) and consulted for projected key
	// consumption at admission time.
	KeyCenter *qkd.KeyCenter
	// ClientID maps a 0-based route index to its key-centre client ID.
	// Default "client-<route+1>", matching qkd.ProvisionFromAllocation.
	ClientID func(route int) string
	// RouteOf maps a session ID to the 0-based route serving it. Default:
	// FNV-1a hash of the ID modulo the route count.
	RouteOf func(sessionID string) int
	// SecurityWeights is ς_n per route (Eq. 9). Default: all 1.
	SecurityWeights []float64
	// LambdaSet is the ascending CKKS degree choice set (17d). Default
	// {2^15, 2^16, 2^17}.
	LambdaSet []float64
	// Profiles is the security-profile registry the per-route λ choice is
	// actuated through: each route's planned λ resolves to a registry
	// profile and new sessions on the route are steered to it at
	// negotiation time. Only registry members whose λ is in LambdaSet are
	// candidates, so pinning LambdaSet pins the actuation too. Nil
	// selects profile.Default(), which must then match the edge server's
	// registry.
	Profiles *profile.Registry
	// AlphaMSL and AlphaT weight the security utility against the modeled
	// compute delay when choosing λ. Defaults 5e-2 (the §VI-A calibrated
	// α_msl, see internal/core) and 0.4.
	AlphaMSL, AlphaT float64
	// BaseRekeyBytes is the per-key byte budget at λ = LambdaRef; budgets
	// scale from it via DeriveRekeyBudget. Default 1 MiB.
	BaseRekeyBytes int64
	// WithdrawBytes is the QKD material one key rotation consumes
	// (edge.RekeyWithdrawBytes on the serving side). Default 32.
	WithdrawBytes int
	// MaxSessions caps AdmitCapacity regardless of key stock
	// (0 = no cap beyond what the key plane sustains).
	MaxSessions int
	// ServerHz and TokensPerSample parameterize the compute-cost side of
	// the λ choice (Eq. 13). Defaults 3.3e9 and 64.
	ServerHz        float64
	TokensPerSample float64
	// PhiMin is the minimum per-route rate (17a). Default 1e-2.
	PhiMin float64
	// Interval is the replanning period of Start. Default 1s.
	Interval time.Duration
	// Metrics, when set, receives the control plane's instrumentation:
	// replan durations and counts, plan-delta counters, and key-centre
	// stock/flow series. Nil disables control-plane metrics.
	Metrics *obs.Registry
	// Logf sinks diagnostics; nil discards them.
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.ClientID == nil {
		c.ClientID = func(route int) string { return fmt.Sprintf("client-%d", route+1) }
	}
	if c.RouteOf == nil {
		routes := uint32(c.Network.NumRoutes())
		c.RouteOf = func(sessionID string) int {
			h := fnv.New32a()
			h.Write([]byte(sessionID))
			return int(h.Sum32() % routes)
		}
	}
	if len(c.LambdaSet) == 0 {
		c.LambdaSet = []float64{32768, 65536, 131072}
	}
	if c.Profiles == nil {
		c.Profiles = profile.Default()
	}
	if c.AlphaMSL <= 0 {
		c.AlphaMSL = 5e-2
	}
	if c.AlphaT <= 0 {
		c.AlphaT = 0.4
	}
	if c.BaseRekeyBytes <= 0 {
		c.BaseRekeyBytes = 1 << 20
	}
	if c.WithdrawBytes <= 0 {
		c.WithdrawBytes = 32
	}
	if c.ServerHz <= 0 {
		c.ServerHz = 3.3e9
	}
	if c.TokensPerSample <= 0 {
		c.TokensPerSample = 64
	}
	if c.PhiMin <= 0 {
		c.PhiMin = 1e-2
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return c
}

// Controller closes the loop between serving telemetry and the paper's
// optimization program: it periodically re-solves the utility-cost
// allocation over the live Snapshot and publishes a Plan that the edge
// server's admission and rekey-budget hooks read lock-free. It implements
// the edge server's control-plane interface (BindServe / AdmitSession /
// AdmitCompute / RekeyBudget / ObserveCompute).
type Controller struct {
	cfg Config
	tel *Telemetry
	met *controlObs // nil when Config.Metrics is unset

	plan   atomic.Pointer[Plan]
	seq    atomic.Uint64
	planMu sync.Mutex // serializes Replan (snapshot deltas + actuation)

	// store is the bound session store (actuated for live MaxSessions
	// resizing); storeCeiling is its built cap at bind time — the bound
	// resizing never raises the cap above what the server was built with.
	store        atomic.Pointer[serve.Store]
	storeCeiling atomic.Int64

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
	started  atomic.Bool
}

// New validates the configuration and builds a Controller with one initial
// plan already solved (cold-start telemetry), so admission and budget
// queries work before the first Start tick.
func New(cfg Config) (*Controller, error) {
	if cfg.Network == nil {
		return nil, errors.New("control: nil network")
	}
	cfg = cfg.withDefaults()
	if len(cfg.SecurityWeights) == 0 {
		cfg.SecurityWeights = make([]float64, cfg.Network.NumRoutes())
		for i := range cfg.SecurityWeights {
			cfg.SecurityWeights[i] = 1
		}
	}
	if len(cfg.SecurityWeights) != cfg.Network.NumRoutes() {
		return nil, fmt.Errorf("control: %d security weights for %d routes",
			len(cfg.SecurityWeights), cfg.Network.NumRoutes())
	}
	c := &Controller{cfg: cfg, tel: NewTelemetry(), stop: make(chan struct{})}
	if cfg.Metrics != nil {
		c.met = newControlObs(cfg.Metrics, cfg.KeyCenter)
	}
	if _, err := c.Replan(); err != nil {
		return nil, err
	}
	return c, nil
}

// controlObs is the control plane's instrument set on the shared obs
// registry: replan timing, plan-delta counters and key-centre series.
type controlObs struct {
	replanSeconds  *obs.Histogram
	replans        *obs.Counter
	lambdaShifts   *obs.Counter
	capacityShifts *obs.Counter
	budgetShifts   *obs.Counter
	routeShifts    *obs.Counter
}

func newControlObs(reg *obs.Registry, kc *qkd.KeyCenter) *controlObs {
	m := &controlObs{
		replanSeconds:  reg.Histogram("quhe_control_replan_seconds", "control-loop replan duration"),
		replans:        reg.Counter("quhe_control_replans_total", "completed replans"),
		lambdaShifts:   reg.Counter("quhe_control_plan_changes_total", "plan deltas by changed field", "field", "lambda"),
		capacityShifts: reg.Counter("quhe_control_plan_changes_total", "", "field", "admit_capacity"),
		budgetShifts:   reg.Counter("quhe_control_plan_changes_total", "", "field", "rekey_budget"),
		routeShifts:    reg.Counter("quhe_control_plan_changes_total", "", "field", "route_profile"),
	}
	if kc != nil {
		reg.GaugeFunc("quhe_qkd_stock_bytes", "buffered key material across client pools", func() float64 {
			var bytes int
			for _, p := range kc.PoolStats() {
				bytes += p.AvailableBytes
			}
			return float64(bytes)
		})
		reg.CounterFunc("quhe_qkd_deposits_total", "key-material deposits", func() float64 {
			return float64(kc.Counters().Deposits)
		})
		reg.CounterFunc("quhe_qkd_deposited_bytes_total", "key bytes deposited", func() float64 {
			return float64(kc.Counters().DepositedBytes)
		})
		reg.CounterFunc("quhe_qkd_withdrawals_total", "successful key withdrawals", func() float64 {
			return float64(kc.Counters().Withdrawals)
		})
		reg.CounterFunc("quhe_qkd_withdrawn_bytes_total", "key bytes withdrawn", func() float64 {
			return float64(kc.Counters().WithdrawnBytes)
		})
		reg.CounterFunc("quhe_qkd_failed_withdrawals_total", "withdrawals refused (unknown client or dry pool)", func() float64 {
			return float64(kc.Counters().FailedWithdrawals)
		})
		// Key-flow ledger series, by withdrawal cause. The ledger may be
		// attached after the controller is built, so each scrape looks it
		// up; with none attached every series reads 0. The cause domain is
		// fixed at build time, per the obs cardinality rules.
		for _, cause := range qkd.Causes() {
			cause := cause
			reg.CounterFunc("quhe_keyledger_withdrawals_total", "ledgered QKD withdrawals by cause", func() float64 {
				if l := kc.KeyLedger(); l != nil {
					return float64(l.CauseWithdrawals(cause))
				}
				return 0
			}, "cause", cause)
			reg.CounterFunc("quhe_keyledger_bytes_total", "ledgered QKD key bytes by cause", func() float64 {
				if l := kc.KeyLedger(); l != nil {
					return float64(l.CauseBytes(cause))
				}
				return 0
			}, "cause", cause)
		}
	}
	return m
}

// observePlanDelta counts which plan fields moved between consecutive
// replans — a flapping λ or admission capacity shows up as a rate here
// long before it shows up as client-visible churn.
func (m *controlObs) observePlanDelta(prev, next *Plan) {
	if m == nil || prev == nil || next == nil {
		return
	}
	if prev.Lambda != next.Lambda {
		m.lambdaShifts.Inc()
	}
	if prev.AdmitCapacity != next.AdmitCapacity {
		m.capacityShifts.Inc()
	}
	if prev.DefaultRekeyBudget != next.DefaultRekeyBudget {
		m.budgetShifts.Inc()
	}
	if len(prev.RouteProfile) != len(next.RouteProfile) {
		m.routeShifts.Inc()
	} else {
		for i := range next.RouteProfile {
			if prev.RouteProfile[i] != next.RouteProfile[i] {
				m.routeShifts.Inc()
				break
			}
		}
	}
}

// Telemetry returns the registry the serving plane publishes into.
func (c *Controller) Telemetry() *Telemetry { return c.tel }

// Plan returns the current plan (never nil after New).
func (c *Controller) Plan() *Plan { return c.plan.Load() }

// PlanJSON returns the current plan as a JSON-marshalable value — the
// hook the edge server's /debug/plan endpoint type-asserts for, kept off
// the Controller interface so test fakes stay small.
func (c *Controller) PlanJSON() any { return c.plan.Load() }

// Start launches the periodic replanning loop. Idempotent.
func (c *Controller) Start() {
	if !c.started.CompareAndSwap(false, true) {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		ticker := time.NewTicker(c.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-ticker.C:
				if _, err := c.Replan(); err != nil {
					c.cfg.Logf("control: replan: %v", err)
				}
			}
		}
	}()
}

// Stop halts the replanning loop and waits for it to exit. Safe to call
// more than once, and without a prior Start.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// Replan runs one control iteration: snapshot telemetry, re-solve the
// allocation and λ choice, derive budgets and capacity, actuate the key
// centre, and publish the new plan atomically. Serialized internally; safe
// to call concurrently with the Start loop and with the admission hooks.
func (c *Controller) Replan() (*Plan, error) {
	c.planMu.Lock()
	defer c.planMu.Unlock()
	replanStart := time.Now()

	snap := c.tel.Snapshot()

	phi, w, logU, err := c.solveAllocation()
	if err != nil {
		return nil, err
	}
	lambda := c.chooseLambda(snap)
	msl := costmodel.MinSecurityLevel(lambda)

	plan := &Plan{
		Seq:               c.seq.Add(1),
		At:                snap.At,
		Lambda:            lambda,
		MSL:               msl,
		Phi:               phi,
		Werner:            w,
		LogUtility:        logU,
		RekeyBudget:       make(map[string]int64, len(snap.Sessions)),
		DemandBytesPerSec: snap.DemandBytesPerSec,
	}
	plan.RouteLambda, plan.RouteProfile = c.chooseRouteProfiles(snap)
	plan.DefaultRekeyBudget = DeriveRekeyBudget(c.cfg.BaseRekeyBytes, lambda)
	for _, s := range snap.Sessions {
		plan.RekeyBudget[s.ID] = c.sessionBudget(plan, s, phi, w)
	}
	plan.AdmitCapacity = c.admitCapacity()
	// The queue envelope is 3/4 of the backlog the scheduler was built
	// for. Since the plan now *actuates* this bound (Resize below), it is
	// both the admission shed point (typed CodeAdmissionDenied, checked
	// first on the control path) and the hard enqueue boundary — only
	// submissions racing past a same-instant admission check see
	// CodeOverloaded there.
	if sched := c.tel.sched.Load(); sched != nil {
		plan.QueueHighWater = 3 * sched.MaxCapacity() / 4
	}

	// Actuation: provision every route's client with the secret-key rate
	// its allocation sustains (rate_n = φ_n·F_skf(̟_n), Eq. 4), and apply
	// the plan's envelope to the live serving plane — the queue's depth
	// bound moves to the high-water and the session cap follows the
	// admission capacity (never above the built ceiling), so the plan is
	// enforced by the runtime itself, not only advised at admission time.
	if c.cfg.KeyCenter != nil {
		if err := c.cfg.KeyCenter.ProvisionFromAllocation(c.cfg.Network, phi, w, c.cfg.ClientID); err != nil {
			return nil, fmt.Errorf("control: provision: %w", err)
		}
	}
	if sched := c.tel.sched.Load(); sched != nil && plan.QueueHighWater > 0 {
		sched.Resize(plan.QueueHighWater)
	}
	if store := c.store.Load(); store != nil {
		if ceiling := int(c.storeCeiling.Load()); ceiling > 0 {
			target := ceiling
			if plan.AdmitCapacity >= 0 && plan.AdmitCapacity < ceiling {
				target = plan.AdmitCapacity
			}
			if target < 1 {
				target = 1 // a zero cap would evict every resident session
			}
			store.SetMaxSessions(target)
		}
	}

	prev := c.plan.Load()
	c.plan.Store(plan)
	if c.met != nil {
		c.met.replans.Inc()
		c.met.replanSeconds.Observe(time.Since(replanStart).Seconds())
		c.met.observePlanDelta(prev, plan)
	}
	c.cfg.Logf("control: plan %d: λ=%g msl=%.1f lnU=%.3f budget=%d capacity=%d demand=%.0fB/s sessions=%d routes=%v",
		plan.Seq, plan.Lambda, plan.MSL, plan.LogUtility, plan.DefaultRekeyBudget,
		plan.AdmitCapacity, plan.DemandBytesPerSec, len(snap.Sessions), plan.RouteProfile)
	return plan, nil
}

// solveAllocation maximizes ln U_qkd (Eq. 6) over the per-route rate
// allocation by projected gradient over the box [PhiMin, φ_max], with
// infeasible points (link capacity or SKF threshold violations, 19a/20c)
// rejected through an infinite objective — the Stage-1 program P2/P3 in
// its projected-gradient form.
func (c *Controller) solveAllocation() (phi, w []float64, logU float64, err error) {
	net := c.cfg.Network
	n := net.NumRoutes()

	// Per-route upper bounds: a route may use at most its bottleneck
	// link's capacity share (capacity / routes sharing the link), so any
	// box point keeps every link load strictly below β_l.
	fanout := make([]int, net.NumLinks())
	for l := 0; l < net.NumLinks(); l++ {
		for r := 0; r < n; r++ {
			if net.Uses(r, l) {
				fanout[l]++
			}
		}
	}
	lo := make([]float64, n)
	hi := make([]float64, n)
	x0 := make([]float64, n)
	for r := 0; r < n; r++ {
		lo[r] = c.cfg.PhiMin
		hi[r] = math.Inf(1)
		for l := 0; l < net.NumLinks(); l++ {
			if net.Uses(r, l) {
				share := 0.95 * net.Link(l).Beta / float64(fanout[l])
				if share < hi[r] {
					hi[r] = share
				}
			}
		}
		if hi[r] < lo[r] {
			hi[r] = lo[r]
		}
		x0[r] = lo[r]
	}

	f := func(p []float64) float64 {
		if !net.FeasibleRates(p) {
			return math.Inf(1)
		}
		wr, werr := net.WernerFromRates(p)
		if werr != nil {
			return math.Inf(1)
		}
		lu, uerr := net.LogUtility(p, wr)
		if uerr != nil || math.IsInf(lu, -1) {
			return math.Inf(1)
		}
		return -lu
	}
	if math.IsInf(f(x0), 1) {
		return nil, nil, 0, errors.New("control: PhiMin allocation infeasible")
	}
	res, err := optimize.MinimizeProjGrad(f, optimize.Box{Lo: lo, Hi: hi}, x0,
		optimize.PGOptions{MaxIter: 200, Tol: 1e-7})
	if err != nil {
		return nil, nil, 0, fmt.Errorf("control: stage-1 solve: %w", err)
	}
	phi = res.X
	w, err = net.WernerFromRates(phi)
	if err != nil {
		return nil, nil, 0, err
	}
	return phi, w, -res.Value, nil
}

// chooseLambda picks the CKKS degree from the discrete set by the
// utility-cost tradeoff of Eq. (17)'s security and delay terms: the
// importance-weighted security utility α_msl·Σς·f_msl(λ) (Eq. 9) against
// the modeled compute delay of the telemetry-predicted demand (Eqs. 13,
// 29, 31). At zero load the highest security level wins; as demand grows
// the quadratic/linear cycle models pull λ down.
func (c *Controller) chooseLambda(snap Snapshot) float64 {
	weight := 0.0
	for _, s := range snap.Sessions {
		// Guard the user-supplied RouteOf like sessionBudget does: an
		// out-of-range route contributes no weight instead of panicking
		// inside the replanning goroutine.
		if route := c.cfg.RouteOf(s.ID); route >= 0 && route < len(c.cfg.SecurityWeights) {
			weight += c.cfg.SecurityWeights[route]
		}
	}
	if weight <= 0 {
		weight = 1
	}
	// Demand in tokens/s: one float64 slot per token.
	demandTokens := snap.DemandBytesPerSec / 8
	rotPerBlock := rotationsPerBlock(snap.Sessions)
	best := c.cfg.LambdaSet[0]
	bestScore := math.Inf(-1)
	for _, lambda := range c.cfg.LambdaSet {
		delay := costmodel.ComputeDelay(lambda, demandTokens, c.cfg.TokensPerSample, c.cfg.ServerHz)
		// Hold the model against the measured tail: when the candidate λ
		// resolves to a profile with served blocks, the delay term is at
		// least the demand-rate-scaled p99 of those blocks, so a
		// degraded server (contention, thermal, noisy neighbours) pulls λ
		// down even where the cycle model says it should not. The
		// rotation term prices the BSGS matvec kernel's key-switch work on
		// top of the affine cycle model, scaled by the observed per-block
		// rotation intensity.
		if p, ok := c.cfg.Profiles.ByLambda(lambda); ok {
			if rotPerBlock > 0 {
				blocksPerSec := snap.DemandBytesPerSec / (8 * float64(p.Slots()))
				delay += blocksPerSec * rotPerBlock * p.CyclesPerRotation() / c.cfg.ServerHz
			}
			delay = maxDelay(delay, measuredDelaySec(snap.Profiles[p.ID], p, snap.DemandBytesPerSec))
		}
		score := c.cfg.AlphaMSL*weight*costmodel.MinSecurityLevel(lambda) - c.cfg.AlphaT*delay
		if score > bestScore {
			best, bestScore = lambda, score
		}
	}
	return best
}

// rotationsPerBlock aggregates the observed rotation intensity of a
// session set: total hoisted rotations over total served blocks (0 for
// affine-only traffic or before the first block).
func rotationsPerBlock(sessions []SessionSnapshot) float64 {
	var rots, blocks int64
	for _, s := range sessions {
		rots += s.Rotations
		blocks += s.Blocks
	}
	if blocks <= 0 || rots <= 0 {
		return 0
	}
	return float64(rots) / float64(blocks)
}

// measuredDelaySec converts a profile's measured p99 block latency into
// the rate-scaled delay form ComputeDelaySec uses (blocks/s × seconds
// per block), so the two are comparable term for term. Zero when the
// profile has no served blocks yet — the model stands alone cold.
func measuredDelaySec(ps ProfileSnapshot, p *profile.Profile, demandBytesPerSec float64) float64 {
	if ps.Blocks <= 0 || ps.LatencyP99Ms <= 0 {
		return 0
	}
	blocksPerSec := demandBytesPerSec / (8 * float64(p.Slots()))
	return blocksPerSec * ps.LatencyP99Ms / 1e3
}

func maxDelay(a, b float64) float64 {
	if b > a {
		return b
	}
	return a
}

// routeCandidates returns the profiles the per-route λ choice may
// actuate: registry members whose λ is in LambdaSet (so pinning the set
// pins the actuation), falling back to the registry default when the set
// and the registry are disjoint.
func (c *Controller) routeCandidates() []*profile.Profile {
	var cands []*profile.Profile
	for _, lambda := range c.cfg.LambdaSet {
		if p, ok := c.cfg.Profiles.ByLambda(lambda); ok {
			cands = append(cands, p)
		}
	}
	if len(cands) == 0 {
		cands = []*profile.Profile{c.cfg.Profiles.Default()}
	}
	return cands
}

// chooseRouteProfiles solves the per-route λ choice: for each route, the
// candidate profile maximizing α_msl·ς_r·f_msl(λ) − α_T·T_cmp of the
// route's own predicted demand, with T_cmp computed from the profile's
// per-block cost coefficient (calibrated when available). At idle every
// route runs the highest security level; a route whose sessions push
// heavy demand is stepped down independently of its neighbours — the
// heterogeneous-security serving the single global λ could not express.
func (c *Controller) chooseRouteProfiles(snap Snapshot) (lambdas []float64, profiles []string) {
	n := c.cfg.Network.NumRoutes()
	cands := c.routeCandidates()
	demand := make([]float64, n)
	routeRots := make([]int64, n)
	routeBlocks := make([]int64, n)
	for _, s := range snap.Sessions {
		if route := c.cfg.RouteOf(s.ID); route >= 0 && route < n {
			demand[route] += s.BytesPerSec
			routeRots[route] += s.Rotations
			routeBlocks[route] += s.Blocks
		}
	}
	lambdas = make([]float64, n)
	profiles = make([]string, n)
	for r := 0; r < n; r++ {
		weight := 1.0
		if r < len(c.cfg.SecurityWeights) {
			weight = c.cfg.SecurityWeights[r]
		}
		// The route's observed rotation intensity scales the per-block
		// cost: a matvec-heavy route pays its hoisted key-switch work in
		// the delay term and is stepped down earlier than an affine route
		// at the same byte rate.
		rotPerBlock := 0.0
		if routeBlocks[r] > 0 && routeRots[r] > 0 {
			rotPerBlock = float64(routeRots[r]) / float64(routeBlocks[r])
		}
		best := cands[0]
		bestScore := math.Inf(-1)
		for _, p := range cands {
			delay := maxDelay(
				p.ServeDelaySec(demand[r], rotPerBlock, c.cfg.ServerHz),
				measuredDelaySec(snap.Profiles[p.ID], p, demand[r]))
			score := c.cfg.AlphaMSL*weight*p.MSL() - c.cfg.AlphaT*delay
			if score > bestScore {
				best, bestScore = p, score
			}
		}
		lambdas[r], profiles[r] = best.Lambda, best.ID
	}
	return lambdas, profiles
}

// sessionBudget derives one session's rekey byte budget: the U_msl-scaled
// default at the session's actual profile λ (not the global aggregate),
// stretched where the session's demand would imply a rekey cadence its
// route's secret-key rate cannot fund (each rotation draws WithdrawBytes
// of pool material).
func (c *Controller) sessionBudget(plan *Plan, s SessionSnapshot, phi, w []float64) int64 {
	budget := plan.DefaultRekeyBudget
	if s.Profile != "" {
		if p, ok := c.cfg.Profiles.Get(s.Profile); ok {
			budget = DeriveRekeyBudget(c.cfg.BaseRekeyBytes, p.Lambda)
		}
	}
	route := c.cfg.RouteOf(s.ID)
	if route < 0 || route >= len(phi) || s.BytesPerSec <= 0 {
		return budget
	}
	ew, err := c.cfg.Network.EndToEndWerner(route, w)
	if err != nil {
		return budget
	}
	rateBits := phi[route] * qnet.SecretKeyFraction(ew)
	if rateBits <= 0 {
		return budget
	}
	// Sustainable cadence: demand/budget rekeys per second must cost no
	// more than rateBits/8 bytes per second of fresh key material.
	minBudget := int64(math.Ceil(s.BytesPerSec * float64(c.cfg.WithdrawBytes) * 8 / rateBits))
	if minBudget > budget {
		budget = minBudget
	}
	return budget
}

// admitCapacity targets the session count whose next key rotations the
// current key stock can fund (pools only grow via explicit deposits, so
// no projected replenishment is credited). Without a key centre the only
// bound is MaxSessions; -1 means unbounded and 0 genuinely admits
// nothing new.
func (c *Controller) admitCapacity() int {
	capacity := -1
	if c.cfg.KeyCenter != nil {
		bytes := 0
		for _, p := range c.cfg.KeyCenter.PoolStats() {
			bytes += p.AvailableBytes
		}
		capacity = bytes / c.cfg.WithdrawBytes
	}
	if c.cfg.MaxSessions > 0 && (capacity < 0 || capacity > c.cfg.MaxSessions) {
		capacity = c.cfg.MaxSessions
	}
	return capacity
}

// --- edge control-plane hooks ----------------------------------------------

// BindServe attaches the serving plane's gauges to the telemetry registry
// and captures the store for live session-cap actuation (called by the
// edge server at construction).
func (c *Controller) BindServe(pools *serve.PoolSet, sched *serve.Scheduler, store *serve.Store) {
	c.tel.BindServe(pools, sched)
	if store != nil {
		c.store.Store(store)
		c.storeCeiling.Store(int64(store.MaxSessions()))
	}
}

// NegotiateProfile resolves the security profile a new session should
// run. An empty request is steered to the plan's profile for the
// session's route; a concrete request is granted as asked, downgraded to
// the route's planned profile when it demands a higher λ than the plan
// allows, and denied (typed serve.ErrProfileDenied) when the registry
// does not know it.
func (c *Controller) NegotiateProfile(sessionID, requested string) (string, error) {
	reg := c.cfg.Profiles
	planned := reg.DefaultID()
	if p := c.plan.Load(); p != nil {
		if route := c.cfg.RouteOf(sessionID); route >= 0 {
			if rp := p.ProfileForRoute(route); rp != "" {
				planned = rp
			}
		}
	}
	if requested == "" {
		return planned, nil
	}
	req, ok := reg.Get(requested)
	if !ok {
		return "", fmt.Errorf("%w: unknown profile %q", serve.ErrProfileDenied, requested)
	}
	if plannedProf, ok := reg.Get(planned); ok && req.Lambda > plannedProf.Lambda {
		// The plan refuses the requested level on this route: downgrade.
		return planned, nil
	}
	return requested, nil
}

// ObserveSession records a successful registration and its profile in the
// telemetry registry, so the very next replan derives the session's
// budget from its actual λ.
func (c *Controller) ObserveSession(sessionID, profileID string) {
	c.tel.ObserveSession(sessionID, profileID)
}

// AdmitSession decides whether a new session may register. resident is the
// server's current session count. Capacity denials are typed
// serve.ErrAdmissionDenied (CodeAdmissionDenied on the wire); key-pool
// shortfalls are typed serve.ErrKeyExhausted with a retry-after hint
// (CodeKeyExhausted) because they clear on their own as the pool refills.
func (c *Controller) AdmitSession(sessionID string, resident int) error {
	p := c.plan.Load()
	if p == nil {
		return nil
	}
	if p.AdmitCapacity >= 0 && resident >= p.AdmitCapacity {
		c.tel.ObserveAdmission(false)
		return fmt.Errorf("%w: %d sessions at plan capacity %d",
			serve.ErrAdmissionDenied, resident, p.AdmitCapacity)
	}
	if kc := c.cfg.KeyCenter; kc != nil {
		// Projected key consumption: an admitted session must be able to
		// fund its next rotation from its own pool. This denial is typed
		// key exhaustion (not a plain admission denial): it clears on its
		// own as the pool refills, and the retry-after hint derived from
		// the provisioning rate tells the client when.
		if avail, err := kc.Available(sessionID); err == nil && avail < c.cfg.WithdrawBytes {
			c.tel.ObserveAdmission(false)
			return serve.NewKeyExhausted(c.keyRetryAfter(sessionID, c.cfg.WithdrawBytes-avail),
				fmt.Sprintf("key pool for %q holds %d of %d bytes the next rekey needs",
					sessionID, avail, c.cfg.WithdrawBytes))
		}
	}
	c.tel.ObserveAdmission(true)
	return nil
}

// AdmitCompute decides whether one block (or batch) of pendingBytes may be
// served for a session that has already used usedBytes of its current
// key's budget. It sheds when the scheduler occupancy exceeds the plan's
// high-water mark, and when serving would demand a key rotation the
// session's depleted QKD pool cannot fund — the case that otherwise
// leaves clients bouncing between CodeRekeyRequired and failed
// withdrawals.
func (c *Controller) AdmitCompute(sessionID string, usedBytes, pendingBytes int64) error {
	p := c.plan.Load()
	if p == nil {
		return nil
	}
	if p.QueueHighWater > 0 {
		if sched := c.tel.sched.Load(); sched != nil && sched.QueueDepth() >= p.QueueHighWater {
			c.tel.ObserveAdmission(false)
			c.tel.ObserveShed(sessionID, pendingBytes)
			return fmt.Errorf("%w: queue occupancy %d at plan high-water %d",
				serve.ErrAdmissionDenied, sched.QueueDepth(), p.QueueHighWater)
		}
	}
	if kc := c.cfg.KeyCenter; kc != nil {
		if budget := p.BudgetFor(sessionID); budget > 0 && usedBytes+pendingBytes >= budget {
			if avail, err := kc.Available(sessionID); err == nil && avail < c.cfg.WithdrawBytes {
				c.tel.ObserveAdmission(false)
				// Denied bytes still count as demand: a fully shed session
				// must keep registering load with the predictor, or its
				// budget collapses to the idle default and it can never
				// recover. Typed key exhaustion with a provisioning-rate
				// retry hint, so the client backs off instead of spinning
				// between CodeRekeyRequired and failed withdrawals.
				c.tel.ObserveShed(sessionID, pendingBytes)
				return serve.NewKeyExhausted(c.keyRetryAfter(sessionID, c.cfg.WithdrawBytes-avail),
					fmt.Sprintf("key budget exhausted and pool for %q holds %d of %d bytes a rekey needs",
						sessionID, avail, c.cfg.WithdrawBytes))
			}
		}
	}
	return nil
}

// keyRetryAfter converts a key-pool shortfall into a wait estimate from
// the session's provisioned secret-key rate (bits/s): the time the QKD
// plane needs to manufacture the missing bytes. 0 = unknown rate, retry
// at the caller's discretion.
func (c *Controller) keyRetryAfter(sessionID string, deficitBytes int) time.Duration {
	kc := c.cfg.KeyCenter
	if kc == nil || deficitBytes <= 0 {
		return 0
	}
	rate, err := kc.Rate(sessionID)
	if err != nil || rate <= 0 {
		return 0
	}
	return time.Duration(float64(deficitBytes*8) / rate * float64(time.Second))
}

// RekeyBudget returns the plan's per-key byte budget for a session
// (0 only when the controller has no plan, which New precludes).
func (c *Controller) RekeyBudget(sessionID string) int64 {
	p := c.plan.Load()
	if p == nil {
		return 0
	}
	return p.BudgetFor(sessionID)
}

// ObserveCompute publishes one served block into the telemetry registry.
func (c *Controller) ObserveCompute(sessionID string, bytes int64, latency time.Duration, code serve.Code) {
	c.tel.ObserveCompute(sessionID, bytes, latency, code)
}

// ObserveRotations records the hoisted Galois rotations a served matvec
// block carried (the edge server calls this through its optional
// RotationObserver hook). The rotation intensity feeds the λ choice: a
// rotation-heavy route pays its key-switch work in the planner's delay
// term.
func (c *Controller) ObserveRotations(sessionID string, n int) {
	c.tel.ObserveRotations(sessionID, n)
}
