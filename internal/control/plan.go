package control

import (
	"time"

	"quhe/internal/costmodel"
)

// LambdaRef is the reference CKKS degree (2^15, the smallest of the paper's
// λ set): DeriveRekeyBudget scales budgets relative to the security level
// f_msl(LambdaRef).
const LambdaRef = 32768

// Plan is one output of the control loop: the resource allocation the
// admission controller and the edge server actuate until the next replan.
// Fields map back to the paper's program P1 (Eq. 17): Phi/Werner are the
// Stage-1 key-rate block (Eqs. 18–20), Lambda the security-level choice
// weighed by U_msl (Eq. 9) against the server cost model (Eqs. 29, 31),
// and the rekey budgets tie the per-key byte exposure to f_msl (Eq. 30).
type Plan struct {
	// Seq increments per replan; At stamps when the plan was computed.
	Seq uint64
	At  time.Time

	// Lambda is the chosen aggregate CKKS polynomial degree (the
	// single-λ view legacy consumers read); MSL = f_msl(Lambda).
	Lambda float64
	MSL    float64

	// RouteLambda is the per-route λ choice (17d solved per route against
	// the route's own security weight and predicted demand), and
	// RouteProfile the security-profile ID actuating it: new sessions on
	// a route are steered to RouteProfile[route] at negotiation time.
	// Both are indexed by the 0-based route index; nil when the
	// controller has no profile registry.
	RouteLambda  []float64
	RouteProfile []string

	// Phi is the per-route entanglement-rate allocation and Werner the
	// capacity-saturating link Werner parameters of Eq. (18); LogUtility
	// is ln U_qkd (Eq. 6) at that point.
	Phi        []float64
	Werner     []float64
	LogUtility float64

	// DefaultRekeyBudget is the per-key byte budget for sessions without a
	// per-session override; RekeyBudget holds the per-session budgets
	// (stretched where the route's secret-key rate cannot sustain the
	// default's rekey cadence).
	DefaultRekeyBudget int64
	RekeyBudget        map[string]int64

	// AdmitCapacity is the target number of concurrent sessions the key
	// plane can fund (negative = unbounded; 0 admits nothing new, e.g.
	// every pool dry); QueueHighWater is the scheduler occupancy above
	// which new work is shed by admission.
	AdmitCapacity  int
	QueueHighWater int

	// DemandBytesPerSec echoes the telemetry demand the plan was solved
	// against.
	DemandBytesPerSec float64
}

// ProfileForRoute returns the profile the plan steers a route's new
// sessions to ("" when the plan carries no per-route actuation).
func (p *Plan) ProfileForRoute(route int) string {
	if route < 0 || route >= len(p.RouteProfile) {
		return ""
	}
	return p.RouteProfile[route]
}

// BudgetFor returns the rekey byte budget the plan assigns to a session:
// its per-session entry when present, the plan default otherwise. Always
// positive for a plan built by Controller.Replan — re-planning never drops
// a live session's budget to zero.
func (p *Plan) BudgetFor(sessionID string) int64 {
	if b, ok := p.RekeyBudget[sessionID]; ok {
		return b
	}
	return p.DefaultRekeyBudget
}

// DeriveRekeyBudget maps the plan's security level to a per-key byte
// budget:
//
//	budget(λ) = base · f_msl(λ) / f_msl(LambdaRef)
//
// with f_msl from Eq. (30). A transciphering key is exposed through
// CKKS-encrypted material, so the byte volume one key may safely cover
// scales with the HE security level protecting it: at λ = 2^15 the budget
// is exactly base, and it grows monotonically in f_msl(λ) — the property
// the control tests assert. Budgets never derive to zero: any positive
// base yields a budget of at least one byte.
func DeriveRekeyBudget(base int64, lambda float64) int64 {
	if base <= 0 {
		return 0
	}
	scale := costmodel.MinSecurityLevel(lambda) / costmodel.MinSecurityLevel(LambdaRef)
	if scale <= 0 {
		return 1
	}
	b := int64(float64(base) * scale)
	if b < 1 {
		b = 1
	}
	return b
}
