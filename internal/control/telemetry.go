package control

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"quhe/internal/serve"
)

// ewmaAlpha is the smoothing factor of the per-session EWMAs: light enough
// that a plan interval of traffic dominates, heavy enough to ride out
// single-block jitter.
const ewmaAlpha = 0.2

// ewma is a lock-free exponentially weighted moving average. Observations
// CAS the float64 bits, so concurrent workers publish without a mutex; a
// lost race only drops one observation's weight. All-zero bits mean
// "never observed", so a computed 0.0 is stored as negative zero (same
// arithmetic value, distinct bits) and a legitimate zero observation
// cannot reset the history.
type ewma struct{ bits atomic.Uint64 }

func (e *ewma) Observe(v float64) {
	for {
		old := e.bits.Load()
		next := v
		if old != 0 {
			next = (1-ewmaAlpha)*math.Float64frombits(old) + ewmaAlpha*v
		}
		enc := math.Float64bits(next)
		if enc == 0 {
			enc = math.Float64bits(math.Copysign(0, -1))
		}
		if e.bits.CompareAndSwap(old, enc) {
			return
		}
	}
}

// Load returns the current average (+0 folds the stored -0.0 back to 0).
func (e *ewma) Load() float64 { return math.Float64frombits(e.bits.Load()) + 0 }

// SessionTelemetry accumulates one session's serving counters. All fields
// are updated atomically on the compute hot path — the registry adds one
// sync.Map load and a handful of atomic ops per block.
type SessionTelemetry struct {
	bytes    atomic.Int64
	blocks   atomic.Int64
	failures atomic.Int64
	lastSeen atomic.Int64 // unix nanos
	latMs    ewma         // per-block serving latency, milliseconds
	blkBytes ewma         // per-block masked payload bytes

	// Snapshot bookkeeping, touched only under the controller's plan lock.
	prevBytes int64
	prevAt    time.Time
}

// SessionSnapshot is a point-in-time view of one session's telemetry.
type SessionSnapshot struct {
	ID            string
	Bytes, Blocks int64
	Failures      int64
	// LatencyEWMAMs is the smoothed per-block serving latency.
	LatencyEWMAMs float64
	// BlockBytesEWMA is the smoothed masked-payload size per block.
	BlockBytesEWMA float64
	// BytesPerSec is the demand rate observed since the previous snapshot.
	BytesPerSec float64
}

// Snapshot is the registry view a Controller plans against.
type Snapshot struct {
	At       time.Time
	Sessions []SessionSnapshot
	// DemandBytesPerSec aggregates the per-session demand rates.
	DemandBytesPerSec float64
	// QueueDepth / QueueSheds / PoolInUse / PoolSize mirror the bound
	// serve.Scheduler and serve.EvalPool gauges (zero when unbound).
	QueueDepth int
	QueueSheds int64
	PoolInUse  int
	PoolSize   int
	// Admitted / Denied count the admission controller's decisions.
	Admitted, Denied int64
}

// sessionTTL prunes telemetry for sessions with no traffic (evicted or
// abandoned) so the registry cannot grow without bound.
const sessionTTL = 5 * time.Minute

// Telemetry is the lock-cheap registry the serving plane publishes into:
// per-session byte counts and latency EWMAs pushed by the edge server on
// every block, and scheduler/evaluator-pool gauges read straight off the
// bound serve components (which already expose them atomically). It is the
// sensing half of the control loop; Controller.Replan consumes Snapshot.
type Telemetry struct {
	sessions sync.Map // string -> *SessionTelemetry
	admitted atomic.Int64
	denied   atomic.Int64

	// pool and sched are write-once at BindServe and read lock-free on
	// the admission hot path and at snapshot time.
	pool  atomic.Pointer[serve.EvalPool]
	sched atomic.Pointer[serve.Scheduler]
}

// NewTelemetry builds an empty registry.
func NewTelemetry() *Telemetry { return &Telemetry{} }

// BindServe attaches the serving plane's pool and scheduler so snapshots
// include queue depth, shed count and evaluator utilization. Called by the
// edge server at construction; either may be nil.
func (t *Telemetry) BindServe(pool *serve.EvalPool, sched *serve.Scheduler) {
	if pool != nil {
		t.pool.Store(pool)
	}
	if sched != nil {
		t.sched.Store(sched)
	}
}

func (t *Telemetry) session(id string) *SessionTelemetry {
	if st, ok := t.sessions.Load(id); ok {
		return st.(*SessionTelemetry)
	}
	st, _ := t.sessions.LoadOrStore(id, &SessionTelemetry{})
	return st.(*SessionTelemetry)
}

// ObserveCompute records one served (or failed) block for a session.
func (t *Telemetry) ObserveCompute(sessionID string, bytes int64, latency time.Duration, code serve.Code) {
	st := t.session(sessionID)
	st.lastSeen.Store(time.Now().UnixNano())
	if code != serve.CodeOK {
		st.failures.Add(1)
		return
	}
	st.blocks.Add(1)
	st.bytes.Add(bytes)
	st.latMs.Observe(float64(latency) / float64(time.Millisecond))
	st.blkBytes.Observe(float64(bytes))
}

// ObserveAdmission records one admission decision.
func (t *Telemetry) ObserveAdmission(admitted bool) {
	if admitted {
		t.admitted.Add(1)
	} else {
		t.denied.Add(1)
	}
}

// Admitted and Denied report the admission decision counters.
func (t *Telemetry) Admitted() int64 { return t.admitted.Load() }
func (t *Telemetry) Denied() int64   { return t.denied.Load() }

// Snapshot captures the registry for one planning round, computing
// per-session demand rates from the byte deltas since the previous call
// and pruning sessions idle past the TTL. It is called by the Controller
// under its plan lock; the hot-path publishers never block on it.
func (t *Telemetry) Snapshot() Snapshot {
	now := time.Now()
	snap := Snapshot{At: now, Admitted: t.admitted.Load(), Denied: t.denied.Load()}
	pool, sched := t.pool.Load(), t.sched.Load()
	if pool != nil {
		snap.PoolSize, snap.PoolInUse = pool.Size(), pool.InUse()
	}
	if sched != nil {
		snap.QueueDepth, snap.QueueSheds = sched.QueueDepth(), sched.Sheds()
	}
	t.sessions.Range(func(k, v any) bool {
		id, st := k.(string), v.(*SessionTelemetry)
		if last := st.lastSeen.Load(); last != 0 && now.Sub(time.Unix(0, last)) > sessionTTL {
			t.sessions.Delete(k)
			return true
		}
		s := SessionSnapshot{
			ID:             id,
			Bytes:          st.bytes.Load(),
			Blocks:         st.blocks.Load(),
			Failures:       st.failures.Load(),
			LatencyEWMAMs:  st.latMs.Load(),
			BlockBytesEWMA: st.blkBytes.Load(),
		}
		if !st.prevAt.IsZero() {
			if dt := now.Sub(st.prevAt).Seconds(); dt > 0 {
				s.BytesPerSec = float64(s.Bytes-st.prevBytes) / dt
			}
		}
		st.prevBytes, st.prevAt = s.Bytes, now
		snap.Sessions = append(snap.Sessions, s)
		snap.DemandBytesPerSec += s.BytesPerSec
		return true
	})
	sortSessions(snap.Sessions)
	return snap
}

// sortSessions orders snapshots by ID so plans and logs are deterministic.
func sortSessions(s []SessionSnapshot) {
	sort.Slice(s, func(i, j int) bool { return s[i].ID < s[j].ID })
}
