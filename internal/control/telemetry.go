package control

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"quhe/internal/obs"
	"quhe/internal/serve"
)

// ewmaAlpha is the smoothing factor of the per-session EWMAs: light enough
// that a plan interval of traffic dominates, heavy enough to ride out
// single-block jitter.
const ewmaAlpha = 0.2

// ewma is a lock-free exponentially weighted moving average. Observations
// CAS the float64 bits, so concurrent workers publish without a mutex; a
// lost race only drops one observation's weight. All-zero bits mean
// "never observed", so a computed 0.0 is stored as negative zero (same
// arithmetic value, distinct bits) and a legitimate zero observation
// cannot reset the history.
type ewma struct{ bits atomic.Uint64 }

func (e *ewma) Observe(v float64) {
	for {
		old := e.bits.Load()
		next := v
		if old != 0 {
			next = (1-ewmaAlpha)*math.Float64frombits(old) + ewmaAlpha*v
		}
		enc := math.Float64bits(next)
		if enc == 0 {
			enc = math.Float64bits(math.Copysign(0, -1))
		}
		if e.bits.CompareAndSwap(old, enc) {
			return
		}
	}
}

// Load returns the current average (+0 folds the stored -0.0 back to 0).
func (e *ewma) Load() float64 { return math.Float64frombits(e.bits.Load()) + 0 }

// SessionTelemetry accumulates one session's serving counters. All fields
// are updated atomically on the compute hot path — the registry adds one
// sync.Map load and a handful of atomic ops per block.
type SessionTelemetry struct {
	bytes    atomic.Int64
	blocks   atomic.Int64
	failures atomic.Int64
	// demand counts every byte the session *asked* to have served —
	// completed blocks, failed blocks and admission-denied traffic alike.
	// The demand predictor reads this instead of the served-bytes
	// counter, so a fully shed session still registers load and its
	// budget does not collapse to the idle default.
	demand    atomic.Int64
	shedBytes atomic.Int64
	// rotations counts the hoisted Galois rotations served for the
	// session (the BSGS matvec kernel's per-block rotation fan-out);
	// affine-only sessions stay at zero. The planner divides by served
	// blocks to recover the session's rotation intensity.
	rotations atomic.Int64
	lastSeen  atomic.Int64 // unix nanos
	latMs     ewma         // per-block serving latency, milliseconds
	blkBytes  ewma         // per-block masked payload bytes
	// lat is the per-block latency histogram (seconds). Its snapshots
	// merge across a profile's sessions into the tail-latency quantiles
	// the replanner consumes — the EWMA sees the middle of the
	// distribution, the histogram sees its tail.
	lat obs.Histogram
	// profile is the session's security profile (set once at
	// registration; atomic.Value of string).
	profile atomic.Value

	// Snapshot bookkeeping, touched only under the controller's plan lock.
	prevDemand int64
	prevAt     time.Time
	// rateBps smooths the per-window demand rate across planning rounds:
	// when blocks arrive slower than the replan interval, individual
	// windows alternate between bursts and zero bytes, and an unsmoothed
	// rate would make every rate-derived plan term (budget stretch, λ
	// choice) flap plan-to-plan.
	rateBps ewma
}

// SessionSnapshot is a point-in-time view of one session's telemetry.
type SessionSnapshot struct {
	ID            string
	Bytes, Blocks int64
	Failures      int64
	// Profile is the security profile the session registered on ("" when
	// the serving plane never reported one).
	Profile string
	// ShedBytes counts traffic denied by admission since registration.
	ShedBytes int64
	// Rotations counts the hoisted Galois rotations served for the
	// session (0 for affine-only traffic). Rotations/Blocks is the
	// session's rotation intensity the rotation-aware λ choice plans
	// with.
	Rotations int64
	// LatencyEWMAMs is the smoothed per-block serving latency.
	LatencyEWMAMs float64
	// LatencyP50Ms and LatencyP99Ms are exact-rank quantiles of the
	// session's per-block latency histogram (0 before the first block).
	LatencyP50Ms, LatencyP99Ms float64
	// BlockBytesEWMA is the smoothed masked-payload size per block.
	BlockBytesEWMA float64
	// BytesPerSec is the session's demand rate: an EWMA of the per-window
	// rates observed between snapshots — served and shed traffic both
	// count, so shedding a session does not erase its demand signal, and
	// a window that happens to catch no block (blocks slower than the
	// replan interval) decays the rate instead of zeroing it.
	BytesPerSec float64
}

// ProfileSnapshot aggregates one security profile's serving state for a
// planning round.
type ProfileSnapshot struct {
	// Sessions counts sessions registered on the profile.
	Sessions int
	// BytesPerSec is the aggregate demand rate of those sessions.
	BytesPerSec float64
	// Blocks and Bytes total the served work; Rotations totals the hoisted
	// Galois rotations those blocks carried.
	Blocks, Bytes int64
	Rotations     int64
	// LatencyEWMAMs averages the member sessions' latency EWMAs, weighted
	// by each session's served block count (a session serving a thousand
	// blocks moves the profile's latency a thousand times as much as a
	// one-block session).
	LatencyEWMAMs float64
	// LatencyP50Ms and LatencyP99Ms are quantiles of the merged per-block
	// latency histograms of the profile's sessions — the measured tail
	// the replanner holds against its modeled delay.
	LatencyP50Ms, LatencyP99Ms float64
	// PoolSize / PoolInUse mirror the profile's evaluator-pool gauges
	// (zero when the pool was never built).
	PoolSize, PoolInUse int
}

// Snapshot is the registry view a Controller plans against.
type Snapshot struct {
	At       time.Time
	Sessions []SessionSnapshot
	// DemandBytesPerSec aggregates the per-session demand rates (served
	// and shed traffic).
	DemandBytesPerSec float64
	// Profiles aggregates sessions and pool gauges per security profile —
	// the per-profile telemetry export of the profile-aware serving
	// plane.
	Profiles map[string]ProfileSnapshot
	// QueueDepth / QueueSheds / PoolInUse / PoolSize mirror the bound
	// serve.Scheduler and per-profile serve.PoolSet gauges (zero when
	// unbound). PoolSize/PoolInUse aggregate across built pools.
	QueueDepth int
	QueueSheds int64
	PoolInUse  int
	PoolSize   int
	// Admitted / Denied count the admission controller's decisions.
	Admitted, Denied int64
	// LatencyP50Ms / LatencyP99Ms are quantiles of every session's merged
	// latency histogram.
	LatencyP50Ms, LatencyP99Ms float64
}

// sessionTTL prunes telemetry for sessions with no traffic (evicted or
// abandoned) so the registry cannot grow without bound.
const sessionTTL = 5 * time.Minute

// Telemetry is the lock-cheap registry the serving plane publishes into:
// per-session byte counts and latency EWMAs pushed by the edge server on
// every block, per-session profiles reported at registration, and
// scheduler/evaluator-pool gauges read straight off the bound serve
// components (which already expose them atomically). It is the sensing
// half of the control loop; Controller.Replan consumes Snapshot.
type Telemetry struct {
	sessions sync.Map // string -> *SessionTelemetry
	admitted atomic.Int64
	denied   atomic.Int64

	// pools and sched are write-once at BindServe and read lock-free on
	// the admission hot path and at snapshot time.
	pools atomic.Pointer[serve.PoolSet]
	sched atomic.Pointer[serve.Scheduler]
}

// NewTelemetry builds an empty registry.
func NewTelemetry() *Telemetry { return &Telemetry{} }

// BindServe attaches the serving plane's per-profile pool set and
// scheduler so snapshots include queue depth, shed count and per-profile
// evaluator utilization. Called by the edge server at construction;
// either may be nil.
func (t *Telemetry) BindServe(pools *serve.PoolSet, sched *serve.Scheduler) {
	if pools != nil {
		t.pools.Store(pools)
	}
	if sched != nil {
		t.sched.Store(sched)
	}
}

func (t *Telemetry) session(id string) *SessionTelemetry {
	if st, ok := t.sessions.Load(id); ok {
		return st.(*SessionTelemetry)
	}
	st, _ := t.sessions.LoadOrStore(id, &SessionTelemetry{})
	return st.(*SessionTelemetry)
}

// ObserveSession records a registration and the security profile the
// session landed on.
func (t *Telemetry) ObserveSession(sessionID, profileID string) {
	st := t.session(sessionID)
	st.lastSeen.Store(time.Now().UnixNano())
	st.profile.Store(profileID)
}

// ObserveCompute records one served (or failed) block for a session. The
// attempted bytes count as demand regardless of outcome.
func (t *Telemetry) ObserveCompute(sessionID string, bytes int64, latency time.Duration, code serve.Code) {
	st := t.session(sessionID)
	st.lastSeen.Store(time.Now().UnixNano())
	st.demand.Add(bytes)
	if code != serve.CodeOK {
		st.failures.Add(1)
		return
	}
	st.blocks.Add(1)
	st.bytes.Add(bytes)
	st.latMs.Observe(float64(latency) / float64(time.Millisecond))
	st.lat.Observe(latency.Seconds())
	st.blkBytes.Observe(float64(bytes))
}

// ObserveRotations records n hoisted Galois rotations served for a
// session (published by the edge server's matvec path alongside the
// block's ObserveCompute). The planner folds the per-block rotation
// intensity into its delay models, so rotation-heavy routes price their
// key-switch work instead of looking like cheap affine traffic.
func (t *Telemetry) ObserveRotations(sessionID string, n int) {
	if n <= 0 {
		return
	}
	st := t.session(sessionID)
	st.lastSeen.Store(time.Now().UnixNano())
	st.rotations.Add(int64(n))
}

// ObserveShed records traffic the admission controller refused for a
// session: the bytes feed the demand signal (a fully shed session must
// not look idle to the planner) without counting as served work.
func (t *Telemetry) ObserveShed(sessionID string, bytes int64) {
	if bytes <= 0 {
		return
	}
	st := t.session(sessionID)
	st.lastSeen.Store(time.Now().UnixNano())
	st.demand.Add(bytes)
	st.shedBytes.Add(bytes)
}

// ObserveAdmission records one admission decision.
func (t *Telemetry) ObserveAdmission(admitted bool) {
	if admitted {
		t.admitted.Add(1)
	} else {
		t.denied.Add(1)
	}
}

// Admitted and Denied report the admission decision counters.
func (t *Telemetry) Admitted() int64 { return t.admitted.Load() }
func (t *Telemetry) Denied() int64   { return t.denied.Load() }

// SessionProfile reports the profile a session registered on ("" if the
// serving plane never told us).
func (t *Telemetry) SessionProfile(sessionID string) string {
	if st, ok := t.sessions.Load(sessionID); ok {
		if p, ok := st.(*SessionTelemetry).profile.Load().(string); ok {
			return p
		}
	}
	return ""
}

// Snapshot captures the registry for one planning round, computing
// per-session demand rates from the demand-byte deltas since the previous
// call and pruning sessions idle past the TTL. It is called by the
// Controller under its plan lock; the hot-path publishers never block on
// it.
func (t *Telemetry) Snapshot() Snapshot {
	now := time.Now()
	snap := Snapshot{
		At:       now,
		Admitted: t.admitted.Load(),
		Denied:   t.denied.Load(),
		Profiles: make(map[string]ProfileSnapshot),
	}
	pools, sched := t.pools.Load(), t.sched.Load()
	if pools != nil {
		pools.Each(func(id string, p *serve.EvalPool) {
			ps := snap.Profiles[id]
			ps.PoolSize, ps.PoolInUse = p.Size(), p.InUse()
			snap.Profiles[id] = ps
			snap.PoolSize += ps.PoolSize
			snap.PoolInUse += ps.PoolInUse
		})
	}
	if sched != nil {
		snap.QueueDepth, snap.QueueSheds = sched.QueueDepth(), sched.Sheds()
	}
	// Per-profile latency accumulators, finalized after the Range: the
	// weighted-mean numerator/denominator (block counts as weights) and
	// the merged latency histograms.
	profLatSum := make(map[string]float64)
	profLatW := make(map[string]float64)
	profLat := make(map[string]obs.HistSnapshot)
	var allLat obs.HistSnapshot
	t.sessions.Range(func(k, v any) bool {
		id, st := k.(string), v.(*SessionTelemetry)
		if last := st.lastSeen.Load(); last != 0 && now.Sub(time.Unix(0, last)) > sessionTTL {
			t.sessions.Delete(k)
			return true
		}
		hs := st.lat.Snapshot()
		s := SessionSnapshot{
			ID:             id,
			Bytes:          st.bytes.Load(),
			Blocks:         st.blocks.Load(),
			Failures:       st.failures.Load(),
			ShedBytes:      st.shedBytes.Load(),
			Rotations:      st.rotations.Load(),
			LatencyEWMAMs:  st.latMs.Load(),
			LatencyP50Ms:   hs.Quantile(0.5) * 1e3,
			LatencyP99Ms:   hs.Quantile(0.99) * 1e3,
			BlockBytesEWMA: st.blkBytes.Load(),
		}
		if p, ok := st.profile.Load().(string); ok {
			s.Profile = p
		}
		demand := st.demand.Load()
		if !st.prevAt.IsZero() {
			if dt := now.Sub(st.prevAt).Seconds(); dt > 0 {
				st.rateBps.Observe(float64(demand-st.prevDemand) / dt)
			}
		}
		s.BytesPerSec = st.rateBps.Load()
		st.prevDemand, st.prevAt = demand, now
		snap.Sessions = append(snap.Sessions, s)
		snap.DemandBytesPerSec += s.BytesPerSec
		allLat = allLat.Merge(hs)
		if s.Profile != "" {
			ps := snap.Profiles[s.Profile]
			ps.Sessions++
			ps.BytesPerSec += s.BytesPerSec
			ps.Blocks += s.Blocks
			ps.Bytes += s.Bytes
			ps.Rotations += s.Rotations
			snap.Profiles[s.Profile] = ps
			// Mean weighted by served blocks: a session that served a
			// thousand blocks carries a thousand times the weight of a
			// one-block straggler, so the profile's latency tracks the
			// traffic it actually served rather than the session roster.
			profLatSum[s.Profile] += s.LatencyEWMAMs * float64(s.Blocks)
			profLatW[s.Profile] += float64(s.Blocks)
			profLat[s.Profile] = profLat[s.Profile].Merge(hs)
		}
		return true
	})
	for id, ps := range snap.Profiles {
		if w := profLatW[id]; w > 0 {
			ps.LatencyEWMAMs = profLatSum[id] / w
		}
		hs := profLat[id]
		ps.LatencyP50Ms = hs.Quantile(0.5) * 1e3
		ps.LatencyP99Ms = hs.Quantile(0.99) * 1e3
		snap.Profiles[id] = ps
	}
	snap.LatencyP50Ms = allLat.Quantile(0.5) * 1e3
	snap.LatencyP99Ms = allLat.Quantile(0.99) * 1e3
	sortSessions(snap.Sessions)
	return snap
}

// sortSessions orders snapshots by ID so plans and logs are deterministic.
func sortSessions(s []SessionSnapshot) {
	sort.Slice(s, func(i, j int) bool { return s[i].ID < s[j].ID })
}
