// Package quhe is the root of a from-scratch Go reproduction of
//
//	"QuHE: Optimizing Utility-Cost in Quantum Key Distribution and
//	 Homomorphic Encryption Enabled Secure Edge Computing Networks"
//	(Qian, Li, Zhao — ICDCS 2025, arXiv:2507.06086).
//
// The implementation lives under internal/:
//
//   - internal/core        — problem P1 and the QuHE algorithm (Algs. 1–4)
//   - internal/qnet        — SURFnet QKD network model and simulator
//   - internal/qkd         — BB84/BBM92 protocols and the key centre
//   - internal/optimize    — barrier interior point, B&B, heuristics
//   - internal/wireless    — uplink channel, FDMA, Shannon rates
//   - internal/costmodel   — delay/energy/security cost functions
//   - internal/chacha20    — RFC 8439 stream cipher
//   - internal/he/...      — polynomial rings, CKKS, LWE security estimation.
//     The ring arithmetic core is division-free: Montgomery/Barrett
//     reduction with precomputed per-modulus constants, lazy-reduction
//     NTT/INTT with Montgomery-form twiddle tables, and zero-allocation
//     Into variants of the hot polynomial and evaluator operations (see
//     internal/he/ring's package comment for the reduction design).
//     CKKS key material is stored in the NTT domain so evaluator hot
//     paths never transform keys per operation.
//   - internal/transcipher — HE-friendly cipher and homomorphic decryption,
//     with per-worker Scratch buffers for the serving hot path
//   - internal/serve       — multi-tenant serving runtime: sharded LRU
//     session store, shared evaluator pool, bounded scheduler with
//     typed backpressure, QKD-epoch session state
//   - internal/edge        — TCP edge runtime running the full pipeline
//     over internal/serve: framed zero-copy v3 wire protocol (pooled
//     buffers, streaming BatchCompute, request IDs, rekeying, typed
//     error codes) negotiated per connection, with gob v1/v2 wire
//     compatibility on the same port
//   - internal/experiments — regenerators for every table and figure in §VI
//
// Entry points: cmd/quhe (experiment runner), cmd/qkdsim (network
// simulator), cmd/lwe-estimator (security estimator), cmd/edgeload (edge
// serving load generator), and the runnable walkthroughs under examples/.
package quhe

// Version identifies this reproduction's release.
const Version = "1.0.0"
