// Command lwe-estimator reports the minimum security level of an LWE/RLWE
// parameter set under the uSVP, BDD and hybrid-dual cost models, and can
// regenerate the paper's fitted linear security model f_msl(λ) (Eq. 30).
//
// Usage:
//
//	lwe-estimator [-n 32768] [-logq 880] [-sigma 3.2]
//	lwe-estimator -fit          # regenerate Eq. (30) across {2^15..2^17}
//	lwe-estimator -calibrate 67 # find logq reaching 67 bits at -n
package main

import (
	"flag"
	"fmt"
	"os"

	"quhe/internal/he/lwe"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lwe-estimator:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lwe-estimator", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 32768, "LWE/ring dimension")
		logq      = fs.Float64("logq", 880, "log2 of the ciphertext modulus")
		sigma     = fs.Float64("sigma", 3.2, "error standard deviation")
		fit       = fs.Bool("fit", false, "fit the linear f_msl model across {2^15, 2^16, 2^17}")
		calibrate = fs.Float64("calibrate", 0, "find logq reaching this security at -n")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *calibrate > 0 {
		found, err := lwe.CalibrateLogQ(*n, *sigma, *calibrate)
		if err != nil {
			return err
		}
		fmt.Printf("logq = %.1f reaches %.2f bits at n = %d\n", found, *calibrate, *n)
		*logq = found
	}

	min, ests := lwe.MinSecurityLevel(*n, *logq, *sigma)
	fmt.Printf("n = %d, logq = %.1f, sigma = %.2f\n", *n, *logq, *sigma)
	for _, e := range ests {
		fmt.Printf("  %-12s beta = %4d  m = %6d  guessed = %4d  security = %7.2f bits\n",
			e.Attack, e.Beta, e.Samples, e.Guessed, e.SecurityBits)
	}
	fmt.Printf("minimum security level: %.2f bits\n", min)

	if *fit {
		intercept, slope, r2, err := lwe.FitLinearModel([]int{32768, 65536, 131072}, *logq, *sigma)
		if err != nil {
			return err
		}
		fmt.Printf("\nfitted f_msl(lambda) = %.4f + %.6f*lambda   (R² = %.4f)\n", intercept, slope, r2)
		fmt.Println("paper's Eq. (30):    1.4789 + 0.002000*lambda")
	}
	return nil
}
