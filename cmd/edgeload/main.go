// Command edgeload is a load generator for the QuHE edge serving runtime.
// It drives many QKD-provisioned clients against an edge server — its own
// in-process server by default, or a live one via -addr — with open-loop
// arrivals (requests fire at the configured rate regardless of
// completions, so queueing delay is visible) or closed-loop streams
// (-rate 0: each client keeps one request in flight). It reports a JSON
// summary with aggregate throughput, a latency histogram and quantiles:
//
//	edgeload -clients 4 -rate 200 -duration 5s
//	edgeload -addr 10.0.0.7:9000 -clients 16 -rate 1000 -duration 30s
//
// Each client's key material flows through the QKD plane: a simulated
// BBM92 exchange deposits key bits at the key centre, DialQKD withdraws
// them, and -rekey-bytes exercises the rekeying path under load.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"quhe/internal/control"
	"quhe/internal/edge"
	"quhe/internal/faultnet"
	"quhe/internal/he/profile"
	"quhe/internal/obs"
	"quhe/internal/qkd"
	"quhe/internal/qnet"
	"quhe/internal/serve"
)

type config struct {
	Addr        string        `json:"addr"`
	Clients     int           `json:"clients"`
	Rate        float64       `json:"rate_rps"`
	Duration    time.Duration `json:"-"`
	Slots       int           `json:"slots_per_block"`
	Workers     int           `json:"workers"`
	QueueDepth  int           `json:"queue_depth"`
	RekeyBytes  int64         `json:"rekey_bytes"`
	Proto       string        `json:"proto"`
	Profile     string        `json:"profile"`
	Workload    string        `json:"workload"`
	Control     bool          `json:"control"`
	StockBytes  int           `json:"stock_bytes"`
	MetricsAddr string        `json:"metrics_addr,omitempty"`
	// Chaos knobs: when any probability is nonzero every client dials
	// through a seeded faultnet injector and runs with reconnect + resume
	// enabled, so the summary proves sessions survive transport faults.
	FaultSeed  int64   `json:"fault_seed,omitempty"`
	FaultDrop  float64 `json:"fault_drop,omitempty"`
	FaultDelay float64 `json:"fault_delay,omitempty"`
	// Tracing knobs: sample rate for client-side distributed traces and
	// the optional merged client+server chrome://tracing dump.
	TraceSample float64 `json:"trace_sample,omitempty"`
	TraceOut    string  `json:"-"`
}

// sloInfo reports the load run's client-observed SLO attainment: the
// fraction of requests that completed without error, and the fraction of
// served requests under the latency target.
type sloInfo struct {
	Availability float64 `json:"availability"`
	Latency      float64 `json:"latency"`
	TargetMs     float64 `json:"latency_target_ms"`
}

// sloLatencyTarget mirrors the server's per-eval latency objective
// threshold, applied client-side to end-to-end request latency.
const sloLatencyTarget = 250 * time.Millisecond

// planInfo echoes the controller's final plan in the JSON summary.
type planInfo struct {
	Seq           uint64  `json:"seq"`
	Lambda        float64 `json:"lambda"`
	MSL           float64 `json:"msl"`
	DefaultBudget int64   `json:"default_rekey_budget"`
	AdmitCapacity int     `json:"admit_capacity"`
}

// workloadInfo is one request kind's slice of the summary: how many
// blocks it served and its own latency quantiles, so an affine/matvec
// mix shows the two operations' costs side by side instead of blended.
type workloadInfo struct {
	Served int64   `json:"served"`
	P50Ms  float64 `json:"latency_ms_p50"`
	P99Ms  float64 `json:"latency_ms_p99"`
}

type bucket struct {
	LeMs  float64 `json:"le_ms"`
	Count int64   `json:"count"`
}

type summary struct {
	Config     config  `json:"config"`
	DurationS  float64 `json:"duration_s"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"numcpu"`
	Protocol   string  `json:"protocol"`
	// Profiles maps each negotiated security profile to the blocks its
	// clients served — the mixed-λ view under -profile mix.
	Profiles map[string]int64 `json:"profiles,omitempty"`
	// Workloads splits served counts and latency per request kind
	// (affine, matvec) — populated for every run so gates can assert on
	// the kinds they expect.
	Workloads map[string]workloadInfo `json:"workloads,omitempty"`
	Requests  int64                   `json:"requests"`
	Served    int64                   `json:"served"`
	Shed      int64                   `json:"shed_overloaded"`
	Denied    int64                   `json:"shed_admission"`
	ShedKey   int64                   `json:"shed_key_exhausted"`
	Errors    int64                   `json:"errors"`
	Rekeys    int64                   `json:"rekeys"`
	// Fault-tolerance rollup (sum of every client's Stats): transport
	// reconnects, session resumes riding them, and Compute replays.
	Reconnects int64     `json:"reconnects"`
	Resumes    int64     `json:"resumes"`
	Replays    int64     `json:"replays,omitempty"`
	Plan       *planInfo `json:"control_plan,omitempty"`
	SLO        *sloInfo  `json:"slo,omitempty"`
	Throughput float64   `json:"throughput_blocks_per_s"`
	P50Ms      float64   `json:"latency_ms_p50"`
	P90Ms      float64   `json:"latency_ms_p90"`
	P99Ms      float64   `json:"latency_ms_p99"`
	MaxMs      float64   `json:"latency_ms_max"`
	Histogram  []bucket  `json:"latency_histogram"`
	// ServerMetrics is the final /metrics scrape of the in-process
	// server's debug plane (non-histogram samples only), present when
	// -metrics-addr was set.
	ServerMetrics map[string]float64 `json:"server_metrics,omitempty"`
}

// Workload indices for the per-kind latency split.
const (
	wlAffine = iota
	wlMatVec
	numWorkloads
)

func workloadName(wl int) string {
	if wl == wlMatVec {
		return "matvec"
	}
	return "affine"
}

type recorder struct {
	lat      obs.Histogram // client-observed latency, seconds
	wlLat    [numWorkloads]obs.Histogram
	wlServed [numWorkloads]atomic.Int64
	served   atomic.Int64
	servedBy []atomic.Int64 // per-client, for the per-profile rollup
	shed     atomic.Int64
	denied   atomic.Int64
	shedKey  atomic.Int64
	errs     atomic.Int64
	// Client-observed SLOs: availability over every outcome, latency
	// over served requests against the end-to-end target.
	availSLO *obs.SLOTracker
	latSLO   *obs.SLOTracker
}

func (r *recorder) record(ci, wl int, lat time.Duration, err error) {
	r.availSLO.Observe(err == nil)
	switch {
	case err == nil:
		r.served.Add(1)
		r.servedBy[ci].Add(1)
		r.wlServed[wl].Add(1)
		r.lat.Observe(lat.Seconds())
		r.wlLat[wl].Observe(lat.Seconds())
		r.latSLO.Observe(lat <= sloLatencyTarget)
	case isOverloaded(err):
		r.shed.Add(1)
	case isDenied(err):
		// The control plane shed this request by policy (projected key
		// consumption or queue occupancy over plan): typed, not an error.
		r.denied.Add(1)
	case isKeyExhausted(err):
		// QKD key starvation is degradation, not failure: the server told
		// the client when to come back (serve.RetryAfter), so it counts as
		// a typed shed alongside admission denials.
		r.shedKey.Add(1)
	default:
		r.errs.Add(1)
		fmt.Fprintf(os.Stderr, "edgeload: %v\n", err)
	}
}

func isOverloaded(err error) bool {
	return err != nil && serve.CodeOf(err) == serve.CodeOverloaded
}

func isDenied(err error) bool {
	return err != nil && serve.CodeOf(err) == serve.CodeAdmissionDenied
}

func isKeyExhausted(err error) bool {
	return err != nil && serve.CodeOf(err) == serve.CodeKeyExhausted
}

// histogram renders a latency snapshot (seconds) as the summary's
// millisecond buckets: one entry per nonzero bucket at the shared obs
// boundaries, counts per bucket (not cumulative). The overflow bucket,
// should anything land there, is pinned to the observed max.
func histogram(s obs.HistSnapshot) []bucket {
	var out []bucket
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		le := obs.BucketUpper(i) * 1e3
		if i == len(s.Counts)-1 {
			le = s.Max * 1e3
		}
		out = append(out, bucket{LeMs: le, Count: c})
	}
	return out
}

// scrapeServerMetrics pulls the debug plane's /metrics page into flat
// name{labels} → value samples, skipping comment and histogram-bucket
// lines (bucket series would bloat the JSON without adding anything the
// _sum/_count pairs don't already say).
func scrapeServerMetrics(addr string) (map[string]float64, error) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: status %d", addr, resp.StatusCode)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "_bucket{") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out, sc.Err()
}

// starNetwork builds one QKD route per client — a star rooted at the key
// centre with SURFnet-scale link capacities — so the controller's Stage-1
// allocation has a route (and a provisioned rate) per load client.
func starNetwork(clients int) (*qnet.Network, error) {
	links := make([]qnet.Link, clients)
	routes := make([]qnet.Route, clients)
	for i := 0; i < clients; i++ {
		links[i] = qnet.Link{ID: i + 1, LengthKm: 30, Beta: 80}
		routes[i] = qnet.Route{ID: i + 1, Source: "kc", Dest: clientID(i), LinkIDs: []int{i + 1}}
	}
	return qnet.New(links, routes)
}

func clientID(i int) string { return fmt.Sprintf("load-%d", i) }

// loadMatrix builds the in-process server's n×n dense layer for the
// matvec workloads: a diagonally dominant mixing matrix, so results stay
// O(1) regardless of n.
func loadMatrix(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if i == j {
				m[i][j] = 0.5
			} else {
				m[i][j] = 0.25 / float64(n)
			}
		}
	}
	return m
}

func loadBias(n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = 0.01 * float64(i%4)
	}
	return b
}

// routeOf maps session IDs back to their star route ("load-3" → 3).
func routeOf(clients int) func(sessionID string) int {
	return func(sessionID string) int {
		var i int
		if _, err := fmt.Sscanf(sessionID, "load-%d", &i); err != nil || i < 0 || i >= clients {
			return 0
		}
		return i
	}
}

// provision runs simulated BBM92 exchanges until the client's pool can
// cover the initial key plus headroom for rekeys. A positive stock
// instead deposits exactly that many bytes — the finite-stock mode the
// -control runs use to demonstrate admission shedding on key exhaustion.
func provision(kc *qkd.KeyCenter, id string, seed int64, need, stock int) error {
	if stock > 0 {
		if err := kc.Provision(id, 1000); err != nil {
			return err
		}
		return kc.Deposit(id, make([]byte, stock))
	}
	if err := kc.Provision(id, 1000); err != nil {
		return err
	}
	for round := 0; round < 32; round++ {
		have, err := kc.Available(id)
		if err != nil {
			return err
		}
		if have >= need {
			return nil
		}
		if _, err := kc.RunExchange(id, 0.97, 8192, seed+int64(round)); err != nil {
			return err
		}
	}
	return fmt.Errorf("edgeload: QKD pool for %s never reached %d bytes", id, need)
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.Addr, "addr", "", "edge server address (empty: start an in-process server)")
	flag.IntVar(&cfg.Clients, "clients", 4, "concurrent client sessions")
	flag.Float64Var(&cfg.Rate, "rate", 200, "total open-loop arrival rate, blocks/s (0: closed loop)")
	flag.DurationVar(&cfg.Duration, "duration", 5*time.Second, "measurement duration")
	flag.IntVar(&cfg.Slots, "slots", 16, "values per block")
	flag.IntVar(&cfg.Workers, "workers", 0, "server evaluator-pool size (in-process server only; 0: GOMAXPROCS)")
	flag.IntVar(&cfg.QueueDepth, "queue", 0, "server queue depth (in-process server only; 0: 4×workers)")
	flag.Int64Var(&cfg.RekeyBytes, "rekey-bytes", 0, "per-key byte budget (in-process server only; 0: no rekeying; with -control: the controller's base budget at λ_ref)")
	flag.StringVar(&cfg.Proto, "proto", "auto", "wire protocol: auto (v3 with gob fallback), v3 (required), gob (forced legacy)")
	flag.StringVar(&cfg.Profile, "profile", "", "security profile for every client: a registry ID, \"mix\" (spread clients across the registry), or empty (server/plan steering)")
	flag.StringVar(&cfg.Workload, "workload", "affine", "request kind: affine (transcipher-affine blocks), matvec (BSGS packed matrix–vector blocks), mix (alternate per request)")
	flag.BoolVar(&cfg.Control, "control", false, "attach the closed-loop control plane (in-process server only): online admission, U_msl-derived rekey budgets, QKD provisioning from the live allocation")
	flag.IntVar(&cfg.StockBytes, "stock", 0, "finite per-client QKD key stock in bytes (0: replenish generously); with -control, exhaustion degrades to typed key-exhausted sheds with a retry-after hint")
	flag.StringVar(&cfg.MetricsAddr, "metrics-addr", "", "bind the in-process server's debug plane (/metrics, /debug/pprof) on this address and fold a final scrape into the JSON summary")
	flag.Int64Var(&cfg.FaultSeed, "fault-seed", 1, "seed for the deterministic fault injector (with -fault-drop/-fault-delay)")
	flag.Float64Var(&cfg.FaultDrop, "fault-drop", 0, "per-I/O probability of a mid-frame connection drop; nonzero enables reconnect + resume on every client")
	flag.Float64Var(&cfg.FaultDelay, "fault-delay", 0, "per-I/O probability of a short injected delay (0.2–2ms)")
	flag.Float64Var(&cfg.TraceSample, "trace-sample", 0, "client-side distributed-trace sampling fraction in (0, 1]; sampled blocks carry their trace context to the server")
	flag.StringVar(&cfg.TraceOut, "trace-out", "", "write a merged client+server chrome://tracing dump to this file (enables tracing even at -trace-sample 0)")
	jsonOut := flag.String("json", "-", "write the JSON summary to this file (\"-\": stdout, \"\": suppress)")
	flag.Parse()

	if cfg.Clients < 1 || cfg.Slots < 1 || cfg.Duration <= 0 {
		fmt.Fprintln(os.Stderr, "edgeload: -clients, -slots and -duration must be positive")
		os.Exit(2)
	}
	var proto edge.Protocol
	switch cfg.Proto {
	case "auto":
		proto = edge.ProtoAuto
	case "v3":
		proto = edge.ProtoV3
	case "gob":
		proto = edge.ProtoGob
	default:
		fmt.Fprintf(os.Stderr, "edgeload: unknown -proto %q (want auto, v3 or gob)\n", cfg.Proto)
		os.Exit(2)
	}

	reg := profile.Default()
	profileFor := func(i int) string { return cfg.Profile }
	switch cfg.Profile {
	case "", reg.DefaultID():
	case "mix":
		ids := reg.IDs()
		profileFor = func(i int) string { return ids[i%len(ids)] }
		fallthrough
	default:
		if cfg.Proto == "gob" {
			fmt.Fprintln(os.Stderr, "edgeload: -profile needs profile negotiation; drop -proto gob")
			os.Exit(2)
		}
		if cfg.Profile != "mix" {
			if _, ok := reg.Get(cfg.Profile); !ok {
				fmt.Fprintf(os.Stderr, "edgeload: unknown -profile %q (have %v or \"mix\")\n", cfg.Profile, reg.IDs())
				os.Exit(2)
			}
		}
	}

	switch cfg.Workload {
	case "affine":
	case "matvec", "mix":
		if cfg.Proto == "gob" {
			fmt.Fprintln(os.Stderr, "edgeload: -workload matvec rides the v3 protocol; drop -proto gob")
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "edgeload: unknown -workload %q (want affine, matvec or mix)\n", cfg.Workload)
		os.Exit(2)
	}
	wantMatVec := cfg.Workload != "affine"

	if cfg.StockBytes > 0 && cfg.StockBytes < edge.RekeyWithdrawBytes {
		fmt.Fprintf(os.Stderr, "edgeload: -stock %d is below the %d-byte initial withdrawal\n",
			cfg.StockBytes, edge.RekeyWithdrawBytes)
		os.Exit(2)
	}
	if cfg.Control && cfg.Addr != "" {
		fmt.Fprintln(os.Stderr, "edgeload: -control drives the in-process server only (drop -addr)")
		os.Exit(2)
	}
	if cfg.MetricsAddr != "" && cfg.Addr != "" {
		fmt.Fprintln(os.Stderr, "edgeload: -metrics-addr binds the in-process server's debug plane (drop -addr)")
		os.Exit(2)
	}
	if cfg.FaultDrop < 0 || cfg.FaultDrop >= 1 || cfg.FaultDelay < 0 || cfg.FaultDelay >= 1 {
		fmt.Fprintln(os.Stderr, "edgeload: -fault-drop and -fault-delay are probabilities in [0, 1)")
		os.Exit(2)
	}
	if cfg.TraceSample < 0 || cfg.TraceSample > 1 {
		fmt.Fprintln(os.Stderr, "edgeload: -trace-sample is a fraction in [0, 1]")
		os.Exit(2)
	}
	var clientTracer *obs.Tracer
	if cfg.TraceSample > 0 || cfg.TraceOut != "" {
		clientTracer = obs.NewTracer(0, 0)
		if cfg.TraceSample == 0 {
			cfg.TraceSample = 1
		}
	}
	chaos := cfg.FaultDrop > 0 || cfg.FaultDelay > 0
	if chaos && cfg.Proto == "gob" {
		fmt.Fprintln(os.Stderr, "edgeload: fault injection needs v3 reconnect/resume; drop -proto gob")
		os.Exit(2)
	}
	var inj *faultnet.Injector
	if chaos {
		spec := faultnet.Spec{
			DelayProb: cfg.FaultDelay,
			DelayMin:  200 * time.Microsecond,
			DelayMax:  2 * time.Millisecond,
			DropProb:  cfg.FaultDrop,
		}
		inj = faultnet.New(faultnet.Config{Seed: cfg.FaultSeed, Read: spec, Write: spec})
	}

	// QKD plane: one key centre feeds every client session (and, with
	// -control, the controller's provisioning actuator). Pools are funded
	// before the controller exists so its very first plan — the one
	// Setup admissions are judged against — sees the real key stock.
	kc := qkd.NewKeyCenter()
	// The key-flow ledger attributes every withdrawal to its cause; its
	// snapshot backs /debug/keyledger and the quhe_keyledger_* series.
	ledger := qkd.NewLedger()
	kc.AttachLedger(ledger)
	for i := 0; i < cfg.Clients; i++ {
		// Initial key + rekey headroom (or the exact -stock). Headroom is
		// sized for a fast closed loop: a 2 s run on a quick core can burn
		// ~50 rotations per client at small budgets, which the previous
		// 16-withdrawal headroom underfunded.
		if err := provision(kc, clientID(i), int64(1000+i), 64*edge.RekeyWithdrawBytes, cfg.StockBytes); err != nil {
			fmt.Fprintf(os.Stderr, "edgeload: %v\n", err)
			os.Exit(1)
		}
	}

	addr := cfg.Addr
	var srv *edge.Server
	var ctl *control.Controller
	var obsReg *obs.Registry
	if addr == "" {
		// One registry carries both the server's and (with -control) the
		// controller's series, so a single /metrics page shows the whole
		// loop.
		obsReg = obs.NewRegistry()
		scfg := edge.ServerConfig{
			Model:         edge.Model{Weights: []float64{0.5}, Bias: []float64{0.1}, Matrix: loadMatrix(8), MatrixBias: loadBias(8)},
			Workers:       cfg.Workers,
			QueueDepth:    cfg.QueueDepth,
			RekeyBytes:    cfg.RekeyBytes,
			Obs:           obsReg,
			DebugAddr:     cfg.MetricsAddr,
			KeyLedgerJSON: func() any { return ledger.Snapshot() },
		}
		if cfg.Control {
			network, err := starNetwork(cfg.Clients)
			if err != nil {
				fmt.Fprintf(os.Stderr, "edgeload: network: %v\n", err)
				os.Exit(1)
			}
			ctl, err = control.New(control.Config{
				Network:        network,
				KeyCenter:      kc,
				ClientID:       clientID,
				RouteOf:        routeOf(cfg.Clients),
				BaseRekeyBytes: cfg.RekeyBytes,
				Interval:       250 * time.Millisecond,
				Metrics:        obsReg,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "edgeload: control: %v\n", err)
				os.Exit(1)
			}
			ctl.Start()
			defer ctl.Stop()
			scfg.Control = ctl
		}
		var err error
		srv, err = edge.NewServer("127.0.0.1:0", scfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edgeload: server: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		addr = srv.Addr()
	}

	clients := make([]*edge.Client, cfg.Clients)
	for i := range clients {
		id := clientID(i)
		dc := edge.DialConfig{
			Protocol:    proto,
			Profile:     profileFor(i),
			Route:       fmt.Sprintf("route-%d", i+1),
			Tracer:      clientTracer,
			TraceSample: cfg.TraceSample,
		}
		if inj != nil {
			// Chaos mode: every byte crosses the injector, the client runs
			// the full resilience stack (CRC trailers, reconnect + resume,
			// replay), and a per-request deadline bounds the worst case.
			dc.Dialer = inj.Dialer(5 * time.Second)
			dc.Checksum = true
			dc.Reconnect = true
			dc.RequestTimeout = 30 * time.Second
		}
		var c *edge.Client
		var err error
		// The injector can kill a connection mid-Setup; the initial dial
		// retries a few times so the run measures steady-state fault
		// handling, not dial luck.
		for attempt := 0; ; attempt++ {
			c, err = edge.DialQKDWith(addr, id, kc, int64(7+i), dc)
			if err == nil || inj == nil || attempt >= 4 {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "edgeload: dial %s: %v\n", id, err)
			os.Exit(1)
		}
		defer c.Close()
		if wantMatVec {
			// One rotation-key upload per session, before the clock starts,
			// so the measured window is pure matvec serving.
			if c.MatVecDim() == 0 {
				fmt.Fprintf(os.Stderr, "edgeload: server did not negotiate matvec for %s (no dense model, or pre-v3 wire)\n", id)
				os.Exit(1)
			}
			if err := c.EnableMatVec(); err != nil {
				fmt.Fprintf(os.Stderr, "edgeload: rotation keys %s: %v\n", id, err)
				os.Exit(1)
			}
		}
		clients[i] = c
	}
	clientStats := func() (s edge.ClientStats) {
		for _, c := range clients {
			st := c.Stats()
			s.Reconnects += st.Reconnects
			s.Resumes += st.Resumes
			s.Retries += st.Retries
			s.Replays += st.Replays
			s.Keygens += st.Keygens
		}
		return s
	}
	if obsReg != nil {
		// Client-side fault-tolerance series on the same /metrics page the
		// CI chaos smoke scrapes (the server registers quhe_resumes_total).
		obsReg.CounterFunc("quhe_reconnects_total", "client transport reconnects across the load fleet", func() float64 {
			return float64(clientStats().Reconnects)
		})
		obsReg.CounterFunc("quhe_client_replays_total", "in-flight Computes replayed after a resume", func() float64 {
			return float64(clientStats().Replays)
		})
		// Key-flow ledger series by cause (the control plane registers the
		// same series when attached; the registry makes this idempotent).
		for _, cause := range qkd.Causes() {
			cause := cause
			obsReg.CounterFunc("quhe_keyledger_withdrawals_total", "ledgered QKD withdrawals by cause", func() float64 {
				return float64(ledger.CauseWithdrawals(cause))
			}, "cause", cause)
			obsReg.CounterFunc("quhe_keyledger_bytes_total", "ledgered QKD key bytes by cause", func() float64 {
				return float64(ledger.CauseBytes(cause))
			}, "cause", cause)
		}
	}

	rec := &recorder{
		servedBy: make([]atomic.Int64, cfg.Clients),
		availSLO: obs.NewSLOTracker("availability", 0.99),
		latSLO:   obs.NewSLOTracker("latency", 0.99),
	}
	var requests atomic.Int64
	blockCounters := make([]atomic.Uint32, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Duration)

	payload := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = 0.25
		}
		return v
	}
	vec := payload(cfg.Slots)
	var mvVec []float64
	if wantMatVec {
		mvVec = payload(clients[0].MatVecDim())
	}

	fire := func(ci int) {
		defer wg.Done()
		block := blockCounters[ci].Add(1)
		wl := wlAffine
		switch {
		case cfg.Workload == "matvec":
			wl = wlMatVec
		case cfg.Workload == "mix" && block%2 == 0:
			wl = wlMatVec
		}
		t0 := time.Now()
		var err error
		for attempt := 0; attempt < 2; attempt++ {
			var p *edge.Pending
			if wl == wlMatVec {
				p, err = clients[ci].MatVecAsync(block, mvVec)
			} else {
				p, err = clients[ci].ComputeAsync(block, vec)
			}
			if err != nil {
				break
			}
			_, err = p.Wait()
			// Budget exhaustion triggers one epoch-guarded rekey + retry;
			// concurrent failures collapse into a single rotation.
			if err != nil && serve.CodeOf(err) == serve.CodeRekeyRequired && attempt == 0 {
				if rkErr := clients[ci].RekeyIfEpoch(p.Epoch()); rkErr == nil {
					continue
				}
			}
			break
		}
		rec.record(ci, wl, time.Since(t0), err)
	}

	if cfg.Rate > 0 {
		// Open loop: arrivals at the configured rate, independent of
		// completions — queueing and shedding show up in the numbers.
		const maxOutstanding = 4096
		sem := make(chan struct{}, maxOutstanding)
		interval := time.Duration(float64(time.Second) / cfg.Rate)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		ci := 0
		for now := range ticker.C {
			if now.After(deadline) {
				break
			}
			select {
			case sem <- struct{}{}:
			default:
				rec.shed.Add(1) // generator saturated; count as shed
				requests.Add(1)
				continue
			}
			requests.Add(1)
			wg.Add(1)
			go func(ci int) {
				defer func() { <-sem }()
				fire(ci)
			}(ci)
			ci = (ci + 1) % cfg.Clients
		}
	} else {
		// Closed loop: one outstanding request per client.
		for ci := 0; ci < cfg.Clients; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				for time.Now().Before(deadline) {
					requests.Add(1)
					wg.Add(1)
					fire(ci)
				}
			}(ci)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	lat := rec.lat.Snapshot()

	var rekeys int64
	if srv != nil {
		for i := 0; i < cfg.Clients; i++ {
			if st, ok := srv.SessionStats(fmt.Sprintf("load-%d", i)); ok {
				rekeys += st.Rekeys
			}
		}
	}

	profiles := make(map[string]int64)
	for i, c := range clients {
		profiles[c.Profile()] += rec.servedBy[i].Load()
	}
	workloads := make(map[string]workloadInfo)
	for wl := 0; wl < numWorkloads; wl++ {
		served := rec.wlServed[wl].Load()
		if served == 0 {
			continue
		}
		ws := rec.wlLat[wl].Snapshot()
		workloads[workloadName(wl)] = workloadInfo{
			Served: served,
			P50Ms:  ws.Quantile(0.50) * 1e3,
			P99Ms:  ws.Quantile(0.99) * 1e3,
		}
	}
	stats := clientStats()

	sum := summary{
		Config:     cfg,
		DurationS:  elapsed.Seconds(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Protocol:   clients[0].Protocol(),
		Profiles:   profiles,
		Workloads:  workloads,
		Requests:   requests.Load(),
		Served:     rec.served.Load(),
		Shed:       rec.shed.Load(),
		Denied:     rec.denied.Load(),
		ShedKey:    rec.shedKey.Load(),
		Errors:     rec.errs.Load(),
		Rekeys:     rekeys,
		Reconnects: stats.Reconnects,
		Resumes:    stats.Resumes,
		Replays:    stats.Replays,
		Throughput: float64(rec.served.Load()) / elapsed.Seconds(),
		P50Ms:      lat.Quantile(0.50) * 1e3,
		P90Ms:      lat.Quantile(0.90) * 1e3,
		P99Ms:      lat.Quantile(0.99) * 1e3,
		Histogram:  histogram(lat),
	}
	if lat.Count > 0 {
		sum.MaxMs = lat.Max * 1e3
	}
	if srv != nil && srv.DebugAddr() != "" {
		if m, err := scrapeServerMetrics(srv.DebugAddr()); err == nil {
			sum.ServerMetrics = m
		} else {
			fmt.Fprintf(os.Stderr, "edgeload: metrics scrape: %v\n", err)
		}
	}
	sum.SLO = &sloInfo{
		Availability: rec.availSLO.Attainment(),
		Latency:      rec.latSLO.Attainment(),
		TargetMs:     float64(sloLatencyTarget) / float64(time.Millisecond),
	}
	if cfg.TraceOut != "" {
		traces := clientTracer.Dump()
		if srv != nil {
			if tr := srv.Tracer(); tr != nil {
				traces = append(traces, tr.Dump()...)
			}
		}
		f, err := os.Create(cfg.TraceOut)
		if err == nil {
			err = obs.WriteChromeTraces(f, traces)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "edgeload: trace dump: %v\n", err)
		}
	}
	if ctl != nil {
		p := ctl.Plan()
		sum.Plan = &planInfo{
			Seq:           p.Seq,
			Lambda:        p.Lambda,
			MSL:           p.MSL,
			DefaultBudget: p.DefaultRekeyBudget,
			AdmitCapacity: p.AdmitCapacity,
		}
	}

	if *jsonOut != "" {
		blob, err := json.MarshalIndent(&sum, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "edgeload: marshal: %v\n", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(blob)
		} else if err := os.WriteFile(*jsonOut, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "edgeload: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
	}
	if sum.Errors > 0 {
		os.Exit(1)
	}
}
