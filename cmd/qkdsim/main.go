// Command qkdsim simulates the QKD substrate: either the SURFnet
// entanglement-distribution network (validating the analytic capacity and
// secret-key-fraction models the optimizer uses) or a single BB84/BBM92 key
// exchange, optionally with an eavesdropper.
//
// Usage:
//
//	qkdsim -mode network [-duration 100] [-seed 1]
//	qkdsim -mode exchange [-protocol bb84|bbm92] [-qber 0.03] [-werner 0.95]
//	       [-bits 8192] [-eavesdrop] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"quhe/internal/core"
	"quhe/internal/qkd"
	"quhe/internal/qnet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qkdsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("qkdsim", flag.ContinueOnError)
	var (
		mode     = fs.String("mode", "network", "network or exchange")
		duration = fs.Float64("duration", 100, "network simulation horizon (s)")
		protocol = fs.String("protocol", "bb84", "exchange protocol: bb84 or bbm92")
		qber     = fs.Float64("qber", 0.03, "channel error rate (bb84)")
		werner   = fs.Float64("werner", 0.95, "end-to-end Werner parameter (bbm92)")
		bits     = fs.Int("bits", 8192, "raw qubits per exchange")
		eve      = fs.Bool("eavesdrop", false, "enable intercept-resend eavesdropper")
		seed     = fs.Int64("seed", 1, "RNG seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *mode {
	case "network":
		return runNetwork(*duration, *seed)
	case "exchange":
		return runExchange(*protocol, *qber, *werner, *bits, *eve, *seed)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

// runNetwork solves Stage 1 on the paper's SURFnet instance and then
// validates the allocation with the discrete-event simulator.
func runNetwork(duration float64, seed int64) error {
	cfg := core.PaperConfig(seed)
	s1, err := cfg.SolveStage1(core.Stage1Options{})
	if err != nil {
		return err
	}
	fmt.Printf("Stage-1 allocation (U_qkd = %.4f):\n", s1.UQKD)
	for r, phi := range s1.Phi {
		fmt.Printf("  route %d: phi = %.4f pairs/s\n", r+1, phi)
	}
	res, err := cfg.Net.SimulateEntanglementDistribution(s1.Phi, s1.W, qnet.SimConfig{Duration: duration, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("\nDiscrete-event validation over %.0fs:\n", duration)
	fmt.Println("route  requested  delivered  ratio   QBER    empirical-SKF  analytic-SKF")
	for r := 0; r < cfg.Net.NumRoutes(); r++ {
		ew, err := cfg.Net.EndToEndWerner(r, s1.W)
		if err != nil {
			return err
		}
		ratio := 0.0
		if res.RouteRequested[r] > 0 {
			ratio = float64(res.RouteDelivered[r]) / float64(res.RouteRequested[r])
		}
		fmt.Printf("%5d  %9d  %9d  %.3f   %.4f  %12.4f  %12.4f\n",
			r+1, res.RouteRequested[r], res.RouteDelivered[r], ratio,
			res.RouteQBER[r], res.RouteSKF[r], qnet.SecretKeyFraction(ew))
	}
	return nil
}

func runExchange(protocol string, qber, werner float64, bits int, eve bool, seed int64) error {
	cfg := qkd.ExchangeConfig{RawBits: bits, QBER: qber, Eavesdrop: eve, Seed: seed}
	switch protocol {
	case "bb84":
		cfg.Protocol = qkd.BB84
	case "bbm92":
		cfg.Protocol = qkd.BBM92
		cfg.Werner = werner
	default:
		return fmt.Errorf("unknown protocol %q", protocol)
	}
	res, err := qkd.Exchange(cfg)
	if err != nil {
		fmt.Printf("exchange aborted: %v\n", err)
		fmt.Printf("  sifted %d bits, estimated QBER %.4f\n", res.SiftedBits, res.EstimatedQBER)
		return nil
	}
	fmt.Printf("exchange succeeded: %d final key bytes\n", len(res.Key))
	fmt.Printf("  sifted bits:      %d\n", res.SiftedBits)
	fmt.Printf("  estimated QBER:   %.4f (true %.4f)\n", res.EstimatedQBER, res.TrueQBER)
	fmt.Printf("  reconciliation:   %d bits leaked\n", res.LeakedBits)
	fmt.Printf("  secret fraction:  %.4f\n", res.SecretFraction)
	return nil
}
