// Command quhe regenerates the tables and figures of the QuHE paper's
// evaluation section (§VI) from the Go reproduction.
//
// Usage:
//
//	quhe -exp fig3 [-samples 100] [-seed 1] [-workers N]
//	quhe -exp fig4|fig5a|fig5bc|fig5d|table5|table6|topology
//	quhe -exp fig6 [-sweep bandwidth|power|client-cpu|server-cpu|all] [-points 5]
//	quhe -exp all
//
// All experiments run on the paper's SURFnet configuration with channel
// gains drawn from the given seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"quhe/internal/core"
	"quhe/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "quhe:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("quhe", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment: fig3, fig4, fig5a, fig5bc, fig5d, fig6, table5, table6, topology, all")
		seed    = fs.Int64("seed", 1, "RNG seed for channel gains and stochastic baselines")
		samples = fs.Int("samples", 100, "number of random initializations for fig3")
		points  = fs.Int("points", 5, "sweep points per fig6 panel")
		sweep   = fs.String("sweep", "all", "fig6 panel: bandwidth, power, client-cpu, server-cpu, all")
		workers = fs.Int("workers", 0, "parallel workers (0 = NumCPU)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := core.PaperConfig(*seed)
	if err := cfg.Validate(); err != nil {
		return err
	}

	runOne := func(name string) error {
		switch name {
		case "topology":
			return runTopology(cfg)
		case "fig3":
			return runFig3(cfg, *samples, *seed, *workers)
		case "fig4":
			return runFig4(cfg)
		case "fig5a":
			return runFig5a(cfg)
		case "fig5bc":
			return runFig5bc(cfg, *seed)
		case "fig5d":
			return runFig5d(cfg)
		case "fig6":
			return runFig6(cfg, *sweep, *points, *workers)
		case "table5":
			return runTable(cfg, *seed, experiments.Table5)
		case "table6":
			return runTable(cfg, *seed, experiments.Table6)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	if *exp == "all" {
		for _, name := range []string{"topology", "table5", "table6", "fig4", "fig5a", "fig5bc", "fig5d", "fig3", "fig6"} {
			fmt.Printf("==== %s ====\n", name)
			if err := runOne(name); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	return runOne(*exp)
}

func runTopology(cfg *core.Config) error {
	routes, links := experiments.TopologyTables(cfg.Net)
	routes.Render(os.Stdout)
	fmt.Println()
	links.Render(os.Stdout)
	return nil
}

func runFig3(cfg *core.Config, samples int, seed int64, workers int) error {
	start := time.Now()
	res, err := experiments.Fig3(cfg, samples, seed, workers)
	if err != nil {
		return err
	}
	fmt.Printf("Fig. 3: objective across %d random initializations (%.1fs)\n",
		len(res.Values), time.Since(start).Seconds())
	fmt.Printf("  max %.2f  min %.2f  mean %.2f\n", res.Summary.Max, res.Summary.Min, res.Summary.Mean)
	fmt.Printf("  very good [10,15): %.0f%%   good or better (>=5): %.0f%%\n",
		100*res.VeryGood, 100*res.GoodOrBetter)
	experiments.RenderHistogram(os.Stdout, res.Edges, res.Buckets)
	return nil
}

func runFig4(cfg *core.Config) error {
	res, err := experiments.Fig4(cfg)
	if err != nil {
		return err
	}
	experiments.RenderTrace(os.Stdout, "Fig. 4(a) Stage-1 objective", res.Stage1, 12)
	experiments.RenderTrace(os.Stdout, "Fig. 4(b) Stage-2 incumbent", res.Stage2, 12)
	experiments.RenderTrace(os.Stdout, "Fig. 4(c) Stage-3 POBJ", res.Stage3POBJ, 12)
	experiments.RenderTrace(os.Stdout, "Fig. 4(d) Stage-3 duality gap", res.Stage3Gap, 12)
	return nil
}

func runFig5a(cfg *core.Config) error {
	res, err := experiments.Fig5a(cfg)
	if err != nil {
		return err
	}
	t := experiments.Table{
		Title:  "Fig. 5(a): stage calls and runtime",
		Header: []string{"Metric", "S1", "S2", "S3", "Total"},
		Rows: [][]string{
			{"Calls", strconv.Itoa(res.Calls[0]), strconv.Itoa(res.Calls[1]), strconv.Itoa(res.Calls[2]), ""},
			{"Runtime (s)",
				fmt.Sprintf("%.3f", res.StageRuntime[0].Seconds()),
				fmt.Sprintf("%.3f", res.StageRuntime[1].Seconds()),
				fmt.Sprintf("%.3f", res.StageRuntime[2].Seconds()),
				fmt.Sprintf("%.3f", res.Total.Seconds())},
		},
	}
	t.Render(os.Stdout)
	fmt.Printf("objective: %.4f\n", res.Objective)
	return nil
}

func runFig5bc(cfg *core.Config, seed int64) error {
	comps, err := experiments.Stage1Methods(cfg, seed)
	if err != nil {
		return err
	}
	t := experiments.Table{
		Title:  "Fig. 5(b)/(c): Stage-1 method runtime and objective",
		Header: []string{"Method", "Runtime (s)", "Objective (min)"},
	}
	for _, c := range comps {
		t.Rows = append(t.Rows, []string{
			c.Method,
			fmt.Sprintf("%.3f", c.Runtime.Seconds()),
			fmt.Sprintf("%.4f", c.Objective),
		})
	}
	t.Render(os.Stdout)
	return nil
}

func runFig5d(cfg *core.Config) error {
	rows, err := experiments.Fig5d(cfg)
	if err != nil {
		return err
	}
	t := experiments.Table{
		Title:  "Fig. 5(d): whole-procedure method comparison",
		Header: []string{"Method", "Energy (J)", "Delay (s)", "U_msl", "Objective"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Method,
			fmt.Sprintf("%.1f", r.Energy),
			fmt.Sprintf("%.1f", r.Delay),
			fmt.Sprintf("%.2f", r.UMSL),
			fmt.Sprintf("%.3f", r.Objective),
		})
	}
	t.Render(os.Stdout)
	return nil
}

func runFig6(cfg *core.Config, sweep string, points, workers int) error {
	panels := map[string]experiments.Fig6Which{
		"bandwidth":  experiments.Fig6Bandwidth,
		"power":      experiments.Fig6Power,
		"client-cpu": experiments.Fig6ClientCPU,
		"server-cpu": experiments.Fig6ServerCPU,
	}
	var names []string
	if sweep == "all" {
		names = []string{"bandwidth", "power", "client-cpu", "server-cpu"}
	} else {
		if _, ok := panels[sweep]; !ok {
			return fmt.Errorf("unknown sweep %q", sweep)
		}
		names = []string{sweep}
	}
	for _, name := range names {
		res, err := experiments.Fig6(cfg, panels[name], points, workers)
		if err != nil {
			return err
		}
		experiments.RenderSeries(os.Stdout, res)
		fmt.Println()
	}
	return nil
}

func runTable(cfg *core.Config, seed int64, gen func(*core.Config, int64) (experiments.Table, error)) error {
	t, err := gen(cfg, seed)
	if err != nil {
		return err
	}
	t.Render(os.Stdout)
	return nil
}
